//! Correlation analysis (paper §IV.A, equation (2)).
//!
//! The paper scores each metric by the Pearson correlation coefficient
//! between the metric's values and the application execution times over a
//! sweep of I/O access cases, then *normalizes* the sign: "If the value for
//! each I/O metric showed a consistent correlation direction with the
//! expected one listed in Table 1, we recorded it with a positive value;
//! otherwise, we recorded it with a negative value."
//!
//! So a normalized CC near +1 means "strong and in the right direction"; a
//! negative normalized CC is the paper's smoking gun for a misleading metric
//! (e.g. IOPS in Fig. 5, ARPT in Fig. 9/11, BW in Fig. 12).

use crate::error::CoreError;
use crate::metrics::Direction;
use serde::{Deserialize, Serialize};

/// Result of scoring one metric against execution time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CcOutcome {
    /// Raw Pearson CC between metric values and execution times.
    pub raw: f64,
    /// Sign-normalized CC: positive iff the observed direction matches the
    /// expected one.
    pub normalized: f64,
    /// Whether the observed direction matched Table 1's expectation.
    pub direction_correct: bool,
}

/// Pearson correlation coefficient (the paper's equation (2)).
///
/// Returns an error for mismatched/too-short series and for series with zero
/// variance (CC undefined).
///
/// ```
/// use bps_core::correlation::pearson;
/// let time = [10.0, 20.0, 30.0];
/// let throughput = [30.0, 15.0, 10.0];
/// assert!(pearson(&throughput, &time).unwrap() < -0.9);
/// ```
pub fn pearson(x: &[f64], y: &[f64]) -> Result<f64, CoreError> {
    if x.len() != y.len() || x.len() < 2 {
        return Err(CoreError::BadSeries {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    let n = x.len() as f64;
    let mx = x.iter().sum::<f64>() / n;
    let my = y.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mx;
        let dy = yi - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx == 0.0 || syy == 0.0 {
        return Err(CoreError::ZeroVariance);
    }
    // Clamp against floating-point excursions slightly outside [-1, 1].
    Ok((sxy / (sxx.sqrt() * syy.sqrt())).clamp(-1.0, 1.0))
}

/// Spearman rank correlation: Pearson over the rank-transformed series.
/// Robust to monotone nonlinearity; used as a cross-check in the experiment
/// harness (the paper uses Pearson only).
pub fn spearman(x: &[f64], y: &[f64]) -> Result<f64, CoreError> {
    if x.len() != y.len() || x.len() < 2 {
        return Err(CoreError::BadSeries {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    pearson(&ranks(x), &ranks(y))
}

/// Kendall's tau-a: concordant-vs-discordant pair fraction. O(n²), fine for
/// the handful of sweep points per figure.
pub fn kendall_tau(x: &[f64], y: &[f64]) -> Result<f64, CoreError> {
    if x.len() != y.len() || x.len() < 2 {
        return Err(CoreError::BadSeries {
            x_len: x.len(),
            y_len: y.len(),
        });
    }
    let n = x.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let sx = (x[i] - x[j]).partial_cmp(&0.0).expect("finite values");
            let sy = (y[i] - y[j]).partial_cmp(&0.0).expect("finite values");
            use std::cmp::Ordering::*;
            match (sx, sy) {
                (Equal, _) | (_, Equal) => {}
                (a, b) if a == b => concordant += 1,
                _ => discordant += 1,
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    if pairs == 0.0 {
        return Err(CoreError::ZeroVariance);
    }
    Ok((concordant - discordant) as f64 / pairs)
}

/// Average ranks (ties get the mean of their positions), 1-based.
fn ranks(v: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..v.len()).collect();
    idx.sort_by(|&a, &b| v[a].partial_cmp(&v[b]).expect("finite values"));
    let mut out = vec![0.0; v.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && v[idx[j + 1]] == v[idx[i]] {
            j += 1;
        }
        // Positions i..=j share the value; assign the mean rank.
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Score a metric series against execution times, applying the paper's
/// Table 1 direction normalization.
///
/// `expected` is the direction the metric *should* correlate with execution
/// time. The normalized value is `|raw|` when the observed sign matches the
/// expected one and `-|raw|` otherwise — exactly the bars plotted in the
/// paper's Figures 4–6, 9, 11 and 12.
pub fn normalized_cc(
    metric_values: &[f64],
    exec_times: &[f64],
    expected: Direction,
) -> Result<CcOutcome, CoreError> {
    let raw = pearson(metric_values, exec_times)?;
    let direction_correct = raw * expected.sign() >= 0.0;
    let normalized = if direction_correct {
        raw.abs()
    } else {
        -raw.abs()
    };
    Ok(CcOutcome {
        raw,
        normalized,
        direction_correct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_linear_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        assert!((pearson(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        let y_neg: Vec<f64> = x.iter().map(|v| -2.0 * v + 7.0).collect();
        assert!((pearson(&x, &y_neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn symmetric_and_bounded() {
        let x = [1.0, 5.0, 2.0, 8.0, 3.0];
        let y = [2.0, 1.0, 9.0, 4.0, 4.0];
        let a = pearson(&x, &y).unwrap();
        let b = pearson(&y, &x).unwrap();
        assert!((a - b).abs() < 1e-12);
        assert!((-1.0..=1.0).contains(&a));
    }

    #[test]
    fn degenerate_inputs_error() {
        assert!(matches!(
            pearson(&[1.0], &[1.0]),
            Err(CoreError::BadSeries { .. })
        ));
        assert!(matches!(
            pearson(&[1.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(CoreError::BadSeries { .. })
        ));
        assert!(matches!(
            pearson(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]),
            Err(CoreError::ZeroVariance)
        ));
    }

    #[test]
    fn spearman_monotone_nonlinear_is_one() {
        let x = [1.0f64, 2.0, 3.0, 4.0, 5.0];
        let y: Vec<f64> = x.iter().map(|v| v.exp()).collect();
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
        // Pearson on the same data is < 1 (nonlinear).
        assert!(pearson(&x, &y).unwrap() < 1.0);
    }

    #[test]
    fn spearman_handles_ties() {
        let x = [1.0, 1.0, 2.0, 3.0];
        let y = [1.0, 1.0, 2.0, 3.0];
        assert!((spearman(&x, &y).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn kendall_signs() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let up: Vec<f64> = x.to_vec();
        let down: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((kendall_tau(&x, &up).unwrap() - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&x, &down).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalization_matches_paper_convention() {
        let exec = [10.0, 20.0, 30.0, 40.0];
        // A throughput metric falling as time rises: correct direction.
        let good = [4.0, 3.0, 2.0, 1.0];
        let out = normalized_cc(&good, &exec, Direction::Negative).unwrap();
        assert!(out.direction_correct);
        assert!(out.normalized > 0.99);

        // The same metric values scored as a latency metric (expected
        // positive): wrong direction, recorded negative.
        let out = normalized_cc(&good, &exec, Direction::Positive).unwrap();
        assert!(!out.direction_correct);
        assert!(out.normalized < -0.99);
        assert!((out.normalized + out.raw.abs()).abs() < 1e-12);
    }

    #[test]
    fn ranks_average_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
    }
}
