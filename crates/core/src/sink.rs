//! Streaming record observers.
//!
//! The paper notes the BPS calculation "can be overlapped with data
//! accesses": nothing in `B / T` requires holding the full trace. A
//! [`RecordSink`] receives each [`IoRecord`] as the access completes;
//! [`Trace`] implements it by materializing records as before, while
//! [`StreamingMetrics`] folds each record into constant-size accumulators
//! — per-layer counts, byte/block sums, summed response time, and an
//! [`OnlineUnion`] for the overlapped time — and reproduces the four paper
//! metrics bit-for-bit without ever storing a record.

use crate::batch::RecordBatch;
use crate::interval::{Interval, OnlineUnion};
use crate::metrics::{
    registry, Arpt, Bandwidth, Bps, FoldNeeds, Iops, MetricFold, MetricSelection,
};
use crate::record::{IoRecord, Layer};
use crate::time::{Dur, Nanos};
use crate::trace::Trace;

/// Observer fed one record per completed I/O access.
///
/// Implementations must not assume records arrive sorted: layers interleave
/// and concurrent processes complete out of order. They *may* exploit that
/// start times are usually nondecreasing (as [`OnlineUnion`] does).
pub trait RecordSink {
    /// Observe one completed access.
    fn on_record(&mut self, record: &IoRecord);

    /// Observe a batch of completed accesses, in completion order.
    ///
    /// Must be observationally identical to calling
    /// [`RecordSink::on_record`] once per record in order (the default
    /// does exactly that). Producers that complete several accesses in one
    /// step — a striped read fanning out to many servers, one simulated
    /// wake — should prefer this entry point: it crosses the sink
    /// abstraction once per batch instead of once per record, and lets
    /// implementations amortize per-record bookkeeping.
    fn push_batch(&mut self, records: &[IoRecord]) {
        for r in records {
            self.on_record(r);
        }
    }

    /// Observe a structure-of-arrays batch of completed accesses, in
    /// completion order.
    ///
    /// Must be observationally identical to calling
    /// [`RecordSink::on_record`] once per row in order (the default does
    /// exactly that, reassembling each record). Sinks that fold columns
    /// directly — [`StreamingMetrics`] — override this with loops that
    /// read only the columns they need.
    fn push_columns(&mut self, batch: &RecordBatch) {
        for i in 0..batch.len() {
            self.on_record(&batch.get(i));
        }
    }

    /// Observe the application execution time measured alongside the run.
    /// Called at most once, after the last record. The default ignores it.
    fn on_execution_time(&mut self, t: Dur) {
        let _ = t;
    }
}

impl RecordSink for Trace {
    fn on_record(&mut self, record: &IoRecord) {
        self.push(*record);
    }

    fn push_batch(&mut self, records: &[IoRecord]) {
        self.extend(records);
    }

    fn push_columns(&mut self, batch: &RecordBatch) {
        self.extend(&batch.to_records());
    }

    fn on_execution_time(&mut self, t: Dur) {
        self.set_execution_time(t);
    }
}

/// Fan one record stream out to two sinks (e.g. metrics plus a debug
/// trace).
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(pub A, pub B);

impl<A: RecordSink, B: RecordSink> RecordSink for Tee<A, B> {
    fn on_record(&mut self, record: &IoRecord) {
        self.0.on_record(record);
        self.1.on_record(record);
    }

    fn push_batch(&mut self, records: &[IoRecord]) {
        self.0.push_batch(records);
        self.1.push_batch(records);
    }

    fn push_columns(&mut self, batch: &RecordBatch) {
        self.0.push_columns(batch);
        self.1.push_columns(batch);
    }

    fn on_execution_time(&mut self, t: Dur) {
        self.0.on_execution_time(t);
        self.1.on_execution_time(t);
    }
}

/// Constant-size accumulator for one observation layer.
#[derive(Debug, Clone, Default)]
struct LayerAcc {
    ops: u64,
    bytes: u64,
    blocks: u64,
    summed: Dur,
    union: OnlineUnion,
}

impl LayerAcc {
    fn observe(&mut self, r: &IoRecord) {
        self.ops += 1;
        self.bytes += r.bytes;
        self.blocks += r.blocks();
        self.summed += r.duration();
        self.union.insert(r.interval());
    }
}

/// The shared stream accumulator every [`MetricFold`] finishes from.
///
/// Equivalent to collecting a [`Trace`] and calling `Metric::compute` on
/// it, but in O(1) space per record (amortized; the interval union keeps
/// one entry per disjoint busy period) for any selection whose
/// [`FoldNeeds`] is [`FoldNeeds::NONE`] — the default, and all the paper
/// four need. Every core accumulator is integer-valued (counts, bytes,
/// blocks, nanoseconds), so the final floating-point divisions see exactly
/// the operands the trace-based path computes: results are bit-for-bit
/// equal, not merely close.
///
/// Metrics that need per-record state (latency percentiles, queue depth)
/// declare it via [`MetricFold::needs`]; build the sink with
/// [`StreamingMetrics::with_needs`] or
/// [`StreamingMetrics::for_selection`] and only the requested state is
/// retained.
#[derive(Debug, Clone, Default)]
pub struct StreamingMetrics {
    app: LayerAcc,
    fs: LayerAcc,
    device_ops: u64,
    net_ops: u64,
    retry_ops: u64,
    first_start: Option<Nanos>,
    last_end: Option<Nanos>,
    exec_time: Option<Dur>,
    records: u64,
    /// Application response times in arrival order, when requested.
    app_durations: Option<Vec<Dur>>,
    /// Application in-flight intervals in arrival order, when requested.
    app_intervals: Option<Vec<Interval>>,
}

/// Register-resident accumulator for one layer's share of a batch: counts
/// plus a running interval hull. Overlapping-or-touching intervals merge
/// into the hull in either direction (the hull of overlapping intervals
/// *is* their union), so the [`OnlineUnion`] is touched once per busy
/// period instead of once per record, and the struct's count fields once
/// per batch.
struct BatchAcc {
    ops: u64,
    bytes: u64,
    blocks: u64,
    summed: Dur,
    run: Option<Interval>,
}

impl BatchAcc {
    fn new() -> Self {
        BatchAcc {
            ops: 0,
            bytes: 0,
            blocks: 0,
            summed: Dur::ZERO,
            run: None,
        }
    }

    #[inline]
    fn observe(&mut self, r: &IoRecord, union: &mut OnlineUnion) {
        self.ops += 1;
        self.bytes += r.bytes;
        self.blocks += r.blocks();
        self.summed += r.duration();
        let iv = r.interval();
        match &mut self.run {
            Some(run) if iv.start <= run.end && iv.end >= run.start => {
                run.start = run.start.min(iv.start);
                run.end = run.end.max(iv.end);
            }
            Some(run) => Self::spill(run, iv, union),
            None => self.run = Some(iv),
        }
    }

    /// Busy-period break: flush the finished hull and start a new one.
    /// Outlined and cold so the fuse loop above stays tight.
    #[cold]
    fn spill(run: &mut Interval, iv: Interval, union: &mut OnlineUnion) {
        union.insert(*run);
        *run = iv;
    }

    fn flush_into(self, layer: &mut LayerAcc) {
        layer.ops += self.ops;
        layer.bytes += self.bytes;
        layer.blocks += self.blocks;
        layer.summed += self.summed;
        if let Some(run) = self.run {
            layer.union.insert(run);
        }
    }
}

impl StreamingMetrics {
    /// Fresh, empty accumulators retaining nothing per record (sufficient
    /// for the paper four).
    pub fn new() -> Self {
        StreamingMetrics::default()
    }

    /// Fresh accumulators retaining the per-record state `needs` asks for.
    pub fn with_needs(needs: FoldNeeds) -> Self {
        StreamingMetrics {
            app_durations: needs.app_durations.then(Vec::new),
            app_intervals: needs.app_intervals.then(Vec::new),
            ..StreamingMetrics::default()
        }
    }

    /// Fresh accumulators able to finish every metric in `selection`.
    pub fn for_selection(selection: &MetricSelection) -> Self {
        StreamingMetrics::with_needs(selection.needs())
    }

    /// `BPS = B / T` (equation (1)): application blocks over overlapped
    /// application I/O time. `None` on an empty or zero-time stream.
    pub fn bps(&self) -> Option<f64> {
        Bps.finish(self)
    }

    /// Application operations over overlapped application I/O time.
    pub fn iops(&self) -> Option<f64> {
        Iops.finish(self)
    }

    /// Bytes moved through the file system over overlapped FS I/O time, in
    /// MB/s; falls back to the application layer when the FS layer was not
    /// instrumented.
    pub fn bandwidth(&self) -> Option<f64> {
        Bandwidth.finish(self)
    }

    /// Average response time per application operation, seconds.
    pub fn arpt(&self) -> Option<f64> {
        Arpt.finish(self)
    }

    /// Finish the registered metric called `name` (case-insensitive) from
    /// the accumulated state. `None` for unknown names, streams with no
    /// relevant records, or metrics whose [`FoldNeeds`] this sink was not
    /// built with.
    pub fn value(&self, name: &str) -> Option<f64> {
        registry().find(name)?.finish(self)
    }

    /// Application execution time: the explicitly observed value if any,
    /// otherwise the wall span over all records (all layers), as
    /// [`Trace::execution_time`] defines it.
    pub fn execution_time(&self) -> Dur {
        self.exec_time
            .unwrap_or(match (self.first_start, self.last_end) {
                (Some(s), Some(e)) => e - s,
                _ => Dur::ZERO,
            })
    }

    /// Overlapped I/O time at a layer (the `T` of equation (1) when
    /// `layer` is `Application`). Zero for `Device`, `Network` and
    /// `Retry`: the streaming path tracks the layers the metrics read.
    pub fn overlapped_io_time(&self, layer: Layer) -> Dur {
        match layer {
            Layer::Application => self.app.union.total(),
            Layer::FileSystem => self.fs.union.total(),
            Layer::Device | Layer::Network | Layer::Retry => Dur::ZERO,
        }
    }

    /// Records observed at a layer.
    pub fn op_count(&self, layer: Layer) -> u64 {
        match layer {
            Layer::Application => self.app.ops,
            Layer::FileSystem => self.fs.ops,
            Layer::Device => self.device_ops,
            Layer::Network => self.net_ops,
            Layer::Retry => self.retry_ops,
        }
    }

    /// Bytes observed at a layer. Zero for `Device`, `Network` and
    /// `Retry`.
    pub fn bytes(&self, layer: Layer) -> u64 {
        match layer {
            Layer::Application => self.app.bytes,
            Layer::FileSystem => self.fs.bytes,
            Layer::Device | Layer::Network | Layer::Retry => 0,
        }
    }

    /// 512-byte blocks observed at a layer. Zero for `Device`, `Network`
    /// and `Retry`.
    pub fn blocks(&self, layer: Layer) -> u64 {
        match layer {
            Layer::Application => self.app.blocks,
            Layer::FileSystem => self.fs.blocks,
            Layer::Device | Layer::Network | Layer::Retry => 0,
        }
    }

    /// Summed (non-overlapped) response time at a layer. Zero for
    /// `Device`, `Network` and `Retry`.
    pub fn summed_io_time(&self, layer: Layer) -> Dur {
        match layer {
            Layer::Application => self.app.summed,
            Layer::FileSystem => self.fs.summed,
            Layer::Device | Layer::Network | Layer::Retry => Dur::ZERO,
        }
    }

    /// Application response times in arrival order; `None` unless the sink
    /// was built with [`FoldNeeds::app_durations`].
    pub fn app_durations(&self) -> Option<&[Dur]> {
        self.app_durations.as_deref()
    }

    /// Application in-flight intervals in arrival order; `None` unless the
    /// sink was built with [`FoldNeeds::app_intervals`].
    pub fn app_intervals(&self) -> Option<&[Interval]> {
        self.app_intervals.as_deref()
    }

    /// Total records observed across all layers.
    pub fn len(&self) -> u64 {
        self.records
    }

    /// True before the first record.
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    /// Application blocks observed so far (the `B` of equation (1)).
    pub fn app_blocks(&self) -> u64 {
        self.app.blocks
    }

    /// Retain the per-record state requested at construction for one
    /// application record. Both branches are untaken (and predictable) in
    /// the default constant-space configuration.
    #[inline]
    fn retain_app(&mut self, r: &IoRecord) {
        if let Some(durs) = &mut self.app_durations {
            durs.push(r.duration());
        }
        if let Some(ivs) = &mut self.app_intervals {
            ivs.push(r.interval());
        }
    }
}

impl RecordSink for StreamingMetrics {
    fn on_record(&mut self, record: &IoRecord) {
        self.records += 1;
        self.first_start = Some(match self.first_start {
            Some(s) => s.min(record.start),
            None => record.start,
        });
        self.last_end = Some(match self.last_end {
            Some(e) => e.max(record.end),
            None => record.end,
        });
        match record.layer {
            Layer::Application => {
                self.app.observe(record);
                self.retain_app(record);
            }
            Layer::FileSystem => self.fs.observe(record),
            Layer::Device => self.device_ops += 1,
            Layer::Network => self.net_ops += 1,
            Layer::Retry => self.retry_ops += 1,
        }
    }

    /// Batch ingestion: one pass accumulating counters, wall-span bounds
    /// and a per-layer running interval hull entirely in locals; the
    /// struct's accumulators are touched once per batch and the union
    /// once per busy period.
    ///
    /// Fusing out of arrival order is sound because [`OnlineUnion`]'s
    /// state is a canonical function of the *set* of inserted intervals:
    /// every insert path keeps the spans disjoint, sorted and maximal,
    /// with `total` exactly equal to their integer measure, and the hull
    /// of overlapping-or-touching intervals is exactly their union. The
    /// final spans and total — and therefore every metric — are
    /// bit-identical to per-record ingestion in arrival order.
    fn push_batch(&mut self, records: &[IoRecord]) {
        let Some(first) = records.first() else { return };
        self.records += records.len() as u64;
        let mut first_start = self.first_start.unwrap_or(first.start);
        let mut last_end = self.last_end.unwrap_or(first.end);
        let mut app = BatchAcc::new();
        let mut fs = BatchAcc::new();
        for r in records {
            first_start = first_start.min(r.start);
            last_end = last_end.max(r.end);
            match r.layer {
                Layer::Application => {
                    app.observe(r, &mut self.app.union);
                    self.retain_app(r);
                }
                Layer::FileSystem => fs.observe(r, &mut self.fs.union),
                Layer::Device => self.device_ops += 1,
                Layer::Network => self.net_ops += 1,
                Layer::Retry => self.retry_ops += 1,
            }
        }
        app.flush_into(&mut self.app);
        fs.flush_into(&mut self.fs);
        self.first_start = Some(first_start);
        self.last_end = Some(last_end);
    }

    /// Columnar ingestion. For the common producer shape — a batch whose
    /// records were all observed at one layer, feeding the constant-space
    /// configuration — the sums, counts and wall-span bounds reduce whole
    /// columns in branch-free loops the compiler can vectorize, and the
    /// union sees one running hull per busy period. Mixed-layer batches
    /// (and sinks retaining per-record state) take the row-wise mirror of
    /// [`push_batch`](RecordSink::push_batch). Both are bit-identical to
    /// per-record ingestion for the same reason batching is: every
    /// accumulator is integer-valued and the union is canonical.
    fn push_columns(&mut self, batch: &RecordBatch) {
        if batch.is_empty() {
            return;
        }
        self.records += batch.len() as u64;
        let starts = batch.starts_col();
        let ends = batch.ends_col();
        let mut first_start = self.first_start.unwrap_or(starts[0]);
        let mut last_end = self.last_end.unwrap_or(ends[0]);
        for &s in starts {
            first_start = first_start.min(s);
        }
        for &e in ends {
            last_end = last_end.max(e);
        }
        self.first_start = Some(first_start);
        self.last_end = Some(last_end);
        let retains = self.app_durations.is_some() || self.app_intervals.is_some();
        match batch.uniform_layer() {
            Some(layer @ (Layer::Application | Layer::FileSystem))
                if !retains || layer == Layer::FileSystem =>
            {
                let acc = match layer {
                    Layer::Application => &mut self.app,
                    _ => &mut self.fs,
                };
                acc.ops += batch.len() as u64;
                acc.bytes += batch.sum_bytes(layer);
                acc.blocks += batch.sum_blocks(layer);
                acc.summed += batch.sum_durations(layer);
                batch.union_into(layer, &mut acc.union);
            }
            Some(Layer::Device) => self.device_ops += batch.len() as u64,
            Some(Layer::Network) => self.net_ops += batch.len() as u64,
            Some(Layer::Retry) => self.retry_ops += batch.len() as u64,
            _ => {
                let mut app = BatchAcc::new();
                let mut fs = BatchAcc::new();
                for i in 0..batch.len() {
                    let r = batch.get(i);
                    match r.layer {
                        Layer::Application => {
                            app.observe(&r, &mut self.app.union);
                            self.retain_app(&r);
                        }
                        Layer::FileSystem => fs.observe(&r, &mut self.fs.union),
                        Layer::Device => self.device_ops += 1,
                        Layer::Network => self.net_ops += 1,
                        Layer::Retry => self.retry_ops += 1,
                    }
                }
                app.flush_into(&mut self.app);
                fs.flush_into(&mut self.fs);
            }
        }
    }

    fn on_execution_time(&mut self, t: Dur) {
        self.exec_time = Some(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Arpt, Bandwidth, Bps, Iops, Metric};
    use crate::record::{FileId, IoOp, ProcessId};

    fn rec(pid: u32, layer: Layer, bytes: u64, s_us: u64, e_us: u64) -> IoRecord {
        IoRecord::new(
            ProcessId(pid),
            IoOp::Read,
            FileId(0),
            0,
            bytes,
            Nanos::from_micros(s_us),
            Nanos::from_micros(e_us),
            layer,
        )
    }

    fn cross_check(records: &[IoRecord]) {
        let mut trace = Trace::new();
        let mut stream = StreamingMetrics::new();
        for r in records {
            trace.on_record(r);
            stream.on_record(r);
        }
        assert_eq!(Bps.compute(&trace), stream.bps());
        assert_eq!(Iops.compute(&trace), stream.iops());
        assert_eq!(Bandwidth.compute(&trace), stream.bandwidth());
        assert_eq!(Arpt.compute(&trace), stream.arpt());
        assert_eq!(trace.execution_time(), stream.execution_time());
    }

    #[test]
    fn matches_trace_on_layered_stream() {
        cross_check(&[
            rec(0, Layer::Application, 4096, 0, 40),
            rec(0, Layer::FileSystem, 8192, 5, 35),
            rec(1, Layer::Application, 512, 20, 90),
            rec(1, Layer::Device, 512, 25, 60),
            rec(0, Layer::Application, 1 << 20, 200, 900),
        ]);
    }

    #[test]
    fn matches_trace_on_empty_and_degenerate_streams() {
        cross_check(&[]);
        // Zero-duration record: BPS/IOPS None, ARPT Some(0).
        cross_check(&[rec(0, Layer::Application, 512, 5, 5)]);
    }

    #[test]
    fn explicit_execution_time_wins() {
        let mut s = StreamingMetrics::new();
        s.on_record(&rec(0, Layer::Application, 512, 0, 10));
        s.on_execution_time(Dur::from_micros(1234));
        assert_eq!(s.execution_time(), Dur::from_micros(1234));
    }

    #[test]
    fn retry_records_do_not_move_the_metrics() {
        let healthy = [
            rec(0, Layer::Application, 4096, 0, 40),
            rec(0, Layer::FileSystem, 4096, 5, 35),
        ];
        let mut plain = StreamingMetrics::new();
        let mut faulted = StreamingMetrics::new();
        for r in &healthy {
            plain.on_record(r);
            faulted.on_record(r);
        }
        faulted.on_record(&rec(0, Layer::Retry, 4096, 5, 20));
        assert_eq!(plain.bps(), faulted.bps());
        assert_eq!(plain.iops(), faulted.iops());
        assert_eq!(plain.bandwidth(), faulted.bandwidth());
        assert_eq!(plain.arpt(), faulted.arpt());
        assert_eq!(faulted.op_count(Layer::Retry), 1);
        assert_eq!(faulted.overlapped_io_time(Layer::Retry), Dur::ZERO);
        // Trace agrees on the retry count (its queries filter by layer).
        cross_check(&[
            rec(0, Layer::Application, 4096, 0, 40),
            rec(0, Layer::Retry, 4096, 5, 20),
        ]);
    }

    #[test]
    fn push_batch_matches_per_record_ingestion() {
        let records = [
            rec(0, Layer::Application, 4096, 0, 40),
            rec(0, Layer::FileSystem, 8192, 5, 35),
            rec(1, Layer::Application, 512, 20, 90),
            rec(1, Layer::Device, 512, 25, 60),
            rec(2, Layer::Retry, 512, 26, 61),
            rec(2, Layer::Network, 512, 27, 58),
            rec(0, Layer::Application, 1 << 20, 200, 900),
            rec(0, Layer::FileSystem, 4096, 210, 890),
        ];
        let mut one = StreamingMetrics::new();
        for r in &records {
            one.on_record(r);
        }
        // Split into uneven batches, including an empty one.
        let mut batched = StreamingMetrics::new();
        batched.push_batch(&records[..3]);
        batched.push_batch(&[]);
        batched.push_batch(&records[3..4]);
        batched.push_batch(&records[4..]);
        assert_eq!(one.bps(), batched.bps());
        assert_eq!(one.iops(), batched.iops());
        assert_eq!(one.bandwidth(), batched.bandwidth());
        assert_eq!(one.arpt(), batched.arpt());
        assert_eq!(one.execution_time(), batched.execution_time());
        assert_eq!(one.len(), batched.len());
        for layer in [
            Layer::Application,
            Layer::FileSystem,
            Layer::Device,
            Layer::Network,
            Layer::Retry,
        ] {
            assert_eq!(one.op_count(layer), batched.op_count(layer));
            assert_eq!(
                one.overlapped_io_time(layer),
                batched.overlapped_io_time(layer)
            );
        }

        // Trace agrees too, and preserves exact record order.
        let mut t1 = Trace::new();
        for r in &records {
            t1.on_record(r);
        }
        let mut t2 = Trace::new();
        t2.push_batch(&records);
        assert_eq!(t1.records(), t2.records());
    }

    #[test]
    fn tee_forwards_batches_to_both_sinks() {
        let records = [
            rec(0, Layer::Application, 2048, 0, 30),
            rec(1, Layer::Application, 2048, 10, 50),
        ];
        let mut tee = Tee(Trace::new(), StreamingMetrics::new());
        tee.push_batch(&records);
        assert_eq!(tee.0.len(), 2);
        assert_eq!(tee.1.len(), 2);
        assert_eq!(Bps.compute(&tee.0), tee.1.bps());
    }

    #[test]
    fn tee_feeds_both_sinks() {
        let mut tee = Tee(Trace::new(), StreamingMetrics::new());
        let r = rec(0, Layer::Application, 2048, 0, 30);
        tee.on_record(&r);
        tee.on_execution_time(Dur::from_micros(30));
        assert_eq!(tee.0.len(), 1);
        assert_eq!(tee.1.len(), 1);
        assert_eq!(Bps.compute(&tee.0), tee.1.bps());
    }
}
