//! # bps-core — the BPS metric and its measurement algebra
//!
//! This crate implements the primary contribution of *"BPS: A Performance
//! Metric of I/O System"* (He, Sun, Yin — IPDPSW 2013):
//!
//! * [`record::IoRecord`] — the per-access record the paper's methodology
//!   captures in the I/O middleware layer (process id, size, start, end).
//! * [`interval`] — the overlapped I/O-time computation of the paper's
//!   Figure 2 (idle time excluded, concurrent accesses counted once),
//!   including both a faithful port of the Figure 3 pseudocode
//!   ([`interval::paper_union_time`]) and an independently implemented,
//!   property-tested sweep ([`interval::union_time`]).
//! * [`metrics`] — BPS itself (equation (1): `BPS = B / T`), plus the three
//!   conventional metrics the paper compares against (IOPS, bandwidth,
//!   average response time) and several extended diagnostics.
//! * [`correlation`] — the Pearson correlation-coefficient machinery
//!   (equation (2)) and the direction normalization of Table 1 used to score
//!   each metric against application execution time.
//!
//! The crate is deliberately free of any simulation or OS dependency: it
//! consumes [`trace::Trace`] values produced either by the `bps-sim`
//! simulated I/O stack or by the `bps-trace` real-file tracer.
//!
//! ## Quick example
//!
//! ```
//! use bps_core::prelude::*;
//!
//! // Two concurrent 1 MiB reads that fully overlap: BPS counts the wall
//! // time once, ARPT averages the two response times.
//! let mut trace = Trace::new();
//! for pid in 0..2 {
//!     trace.push(IoRecord::app_read(
//!         ProcessId(pid), FileId(0), 0, 1 << 20,
//!         Nanos::from_millis(0), Nanos::from_millis(10),
//!     ));
//! }
//! let bps = Bps.compute(&trace).unwrap();
//! // 2 MiB = 4096 blocks over 10 ms of overlapped I/O time.
//! assert_eq!(trace.app_blocks(), 4096);
//! assert!((bps - 4096.0 / 0.010).abs() < 1e-6);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod block;
pub mod correlation;
pub mod error;
pub mod extent;
pub mod interval;
pub mod metrics;
pub mod record;
pub mod report;
pub mod retry;
pub mod sink;
pub mod time;
pub mod trace;
pub mod window;

/// Convenient glob-import surface for downstream crates and examples.
pub mod prelude {
    pub use crate::batch::RecordBatch;
    pub use crate::block::{blocks_for_bytes, BLOCK_SIZE};
    pub use crate::correlation::{normalized_cc, pearson, CcOutcome};
    pub use crate::extent::Extent;
    pub use crate::interval::{union_time, Interval, IntervalSet, OnlineUnion};
    pub use crate::metrics::{
        paper_metrics, registry, Arpt, Bandwidth, Bps, Direction, FoldNeeds, Iops, Metric,
        MetricFold, MetricRegistry, MetricSelection, UnknownMetric,
    };
    pub use crate::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
    pub use crate::report::MetricsSummary;
    pub use crate::retry::{issue_with_retry, RetryIo, RetryPolicy};
    pub use crate::sink::{RecordSink, StreamingMetrics};
    pub use crate::time::{Dur, Nanos};
    pub use crate::trace::Trace;
    pub use crate::window::windowed_series;
}
