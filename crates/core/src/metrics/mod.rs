//! I/O performance metrics (paper §II and §III).
//!
//! Four metrics from the paper:
//!
//! | Metric | Definition here | Layer | Expected CC vs exec time (Table 1) |
//! |---|---|---|---|
//! | [`Iops`] | application ops / overlapped app I/O time | Application | negative |
//! | [`Bandwidth`] | bytes actually moved / overlapped FS I/O time | FileSystem | negative |
//! | [`Arpt`] | mean per-request response time | Application | positive |
//! | [`Bps`] | required 512 B blocks / overlapped app I/O time | Application | negative |
//!
//! Bandwidth deliberately measures the layer *below* the middleware
//! optimizations — "bandwidth measures the performance of the underlying
//! file systems but BPS measures the performance of the I/O systems" — which
//! is exactly why it correlates in the wrong direction once data sieving
//! moves more data than the application asked for (paper Fig. 12). When a
//! trace carries no file-system-layer records (e.g. a plain POSIX trace from
//! the real-file tracer), bandwidth falls back to the application layer,
//! where it equals `BPS × 512`.
//!
//! [`extended`] adds diagnostics beyond the paper (latency percentiles,
//! effective parallelism, I/O efficiency) used by the ablation studies.
//!
//! # One streaming abstraction
//!
//! Every metric — the paper four *and* the extended diagnostics — is a
//! stateless unit struct implementing [`MetricFold`]: the stream state
//! lives in one shared accumulator ([`StreamingMetrics`], fed per record
//! via [`RecordSink::on_record`](crate::sink::RecordSink::on_record) or in
//! batches via [`RecordSink::push_batch`](crate::sink::RecordSink::push_batch)),
//! and [`MetricFold::finish`] reads the final value out of it. The batch
//! path [`Metric::compute`] is a *default method* that folds a
//! materialized trace through the same accumulator, so the streaming path
//! is the single source of truth: there is exactly one definition of each
//! metric in the codebase.
//!
//! Metrics are looked up by name through the [`MetricRegistry`]
//! ([`registry`]); a [`MetricSelection`] is a validated, registry-ordered
//! subset that reports and scenario files can carry around. Adding a
//! metric means implementing [`MetricFold`] in one file and adding one
//! entry to the registry table.

mod arpt;
mod bandwidth;
mod bps;
pub mod extended;
mod iops;

pub use arpt::Arpt;
pub use bandwidth::Bandwidth;
pub use bps::Bps;
pub use iops::Iops;

use crate::batch::RecordBatch;
use crate::sink::{RecordSink, StreamingMetrics};
use crate::trace::Trace;
use extended::{EffectiveParallelism, IoEfficiency, LatencyPercentile, MaxQueueDepth};
use std::fmt;

/// The correlation direction a *well-behaved* metric should exhibit against
/// application execution time (paper Table 1): throughput-like metrics
/// should fall as execution time rises (negative), latency-like metrics
/// should rise with it (positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Higher metric ⇒ lower execution time expected.
    Negative,
    /// Higher metric ⇒ higher execution time expected.
    Positive,
}

impl Direction {
    /// +1.0 for `Positive`, −1.0 for `Negative`; multiplying a raw CC by
    /// this sign yields the paper's normalized CC (positive iff the observed
    /// direction matches the expected one).
    pub fn sign(self) -> f64 {
        match self {
            Direction::Negative => -1.0,
            Direction::Positive => 1.0,
        }
    }
}

/// Extra stream state a metric needs [`StreamingMetrics`] to retain beyond
/// the constant-size core accumulators. The paper four need nothing; the
/// latency percentiles need every application response time, and the queue
/// depth profile needs every application interval. A sink only pays for
/// what the selected metrics ask for ([`MetricSelection::needs`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FoldNeeds {
    /// Retain each application record's response time (percentiles).
    pub app_durations: bool,
    /// Retain each application record's in-flight interval (queue depth).
    pub app_intervals: bool,
}

impl FoldNeeds {
    /// No retained per-record state: the constant-space streaming core.
    pub const NONE: FoldNeeds = FoldNeeds {
        app_durations: false,
        app_intervals: false,
    };

    /// Everything any registered metric could ask for.
    pub const ALL: FoldNeeds = FoldNeeds {
        app_durations: true,
        app_intervals: true,
    };

    /// The union of two needs.
    pub fn union(self, other: FoldNeeds) -> FoldNeeds {
        FoldNeeds {
            app_durations: self.app_durations || other.app_durations,
            app_intervals: self.app_intervals || other.app_intervals,
        }
    }
}

/// A scalar I/O performance metric as a fold over a record stream.
///
/// Implementors are stateless unit structs: the per-record /
/// [`push_batch`](crate::sink::RecordSink::push_batch) update lives in the
/// shared [`StreamingMetrics`] accumulator (so the interval union, counts
/// and sums are maintained once, not once per metric), and
/// [`MetricFold::finish`] reads the metric's value out of the accumulated
/// state. [`FoldNeeds`] declares any retained per-record state the finish
/// step requires.
pub trait MetricFold: Send + Sync {
    /// Short display name ("BPS", "IOPS", ...). Registry lookup is
    /// case-insensitive on this name.
    fn name(&self) -> &'static str;

    /// Expected correlation direction against execution time (Table 1).
    fn expected_direction(&self) -> Direction;

    /// Unit string for reports.
    fn unit(&self) -> &'static str {
        ""
    }

    /// One-line description for `reproduce metrics` and docs.
    fn describe(&self) -> &'static str {
        ""
    }

    /// Extra stream state this metric needs the accumulator to retain.
    fn needs(&self) -> FoldNeeds {
        FoldNeeds::NONE
    }

    /// Read the metric out of the accumulated stream state, or `None` when
    /// the stream has no relevant records (or the accumulator was built
    /// without this metric's [`FoldNeeds`]).
    fn finish(&self, acc: &StreamingMetrics) -> Option<f64>;

    /// Evaluate the metric over one structure-of-arrays batch.
    ///
    /// The default reassembles each row and drives the ordinary
    /// per-record accumulator, so every metric works on batches with no
    /// extra code. The paper four override it with tight loops over just
    /// the columns their formula reads — byte/block sums, response-time
    /// sums, and the interval union — which the compiler can vectorize.
    /// Overrides must be bit-identical to the default: all the operands
    /// are integer sums or the canonical union measure, so any correct
    /// columnar reduction yields exactly the operands `finish` divides.
    fn fold_columns(&self, batch: &RecordBatch) -> Option<f64> {
        let mut acc = StreamingMetrics::with_needs(self.needs());
        for i in 0..batch.len() {
            acc.on_record(&batch.get(i));
        }
        self.finish(&acc)
    }

    /// Column header in case tables ("BW(MB/s)"); defaults to the name.
    fn col_label(&self) -> &'static str {
        self.name()
    }

    /// Decimal places for case-table cells.
    fn col_precision(&self) -> usize {
        3
    }

    /// Column name in CSV exports ("bw_mbs").
    fn csv_label(&self) -> &'static str;
}

/// Batch evaluation of a [`MetricFold`] over a materialized trace.
///
/// `compute` is a provided method that folds the trace's records through a
/// fresh [`StreamingMetrics`] accumulator and finishes the fold — the
/// streaming path is the single definition of every metric. The blanket
/// impl makes every `MetricFold` (and `dyn MetricFold`) a `Metric`.
pub trait Metric: MetricFold {
    /// Compute the metric from a trace, or `None` when the trace has no
    /// relevant records (an empty trace has no meaningful throughput or
    /// latency).
    fn compute(&self, trace: &Trace) -> Option<f64> {
        let mut acc = StreamingMetrics::with_needs(self.needs());
        acc.push_batch(trace.records());
        acc.on_execution_time(trace.execution_time());
        self.finish(&acc)
    }
}

impl<T: MetricFold + ?Sized> Metric for T {}

/// The name-keyed table of every registered metric: the paper four in
/// figure order (IOPS, BW, ARPT, BPS), then the extended diagnostics.
pub struct MetricRegistry {
    entries: &'static [&'static dyn MetricFold],
    paper_len: usize,
}

/// The registry's backing table. Order is API: reports and CSV exports
/// render selections in this order, and the paper four must stay first in
/// the order the paper's figures plot them.
static ENTRIES: [&dyn MetricFold; 9] = [
    &Iops,
    &Bandwidth,
    &Arpt,
    &Bps,
    &LatencyPercentile::P50,
    &LatencyPercentile::P99,
    &EffectiveParallelism,
    &IoEfficiency,
    &MaxQueueDepth,
];

static REGISTRY: MetricRegistry = MetricRegistry {
    entries: &ENTRIES,
    paper_len: 4,
};

/// The process-wide metric registry.
pub fn registry() -> &'static MetricRegistry {
    &REGISTRY
}

impl MetricRegistry {
    /// Every registered metric, in registry order.
    pub fn all(&self) -> &'static [&'static dyn MetricFold] {
        self.entries
    }

    /// The paper's four metrics, in the order its figures plot them.
    pub fn paper(&self) -> &'static [&'static dyn MetricFold] {
        &self.entries[..self.paper_len]
    }

    /// The extended diagnostics beyond the paper.
    pub fn extended(&self) -> &'static [&'static dyn MetricFold] {
        &self.entries[self.paper_len..]
    }

    /// Look a metric up by name, case-insensitively ("p99" finds `P99`).
    pub fn find(&self, name: &str) -> Option<&'static dyn MetricFold> {
        self.entries
            .iter()
            .copied()
            .find(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// Every registered name, in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.entries.iter().map(|m| m.name()).collect()
    }

    /// The registry listing as one comma-joined line, for error messages.
    pub fn listing(&self) -> String {
        self.names().join(", ")
    }
}

/// The paper's four metrics, in the order its figures plot them
/// (IOPS, BW, ARPT, BPS).
pub fn paper_metrics() -> &'static [&'static dyn MetricFold] {
    registry().paper()
}

/// A metric name that is not in the registry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownMetric {
    /// The name that failed to resolve.
    pub name: String,
}

impl fmt::Display for UnknownMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown metric `{}` (valid metrics: {})",
            self.name,
            registry().listing()
        )
    }
}

impl std::error::Error for UnknownMetric {}

/// A validated subset of the registry, canonicalized to registry order.
///
/// Selections are *sets*: parsing `["BPS", "IOPS", "BW", "ARPT"]` yields
/// the same selection — and therefore byte-identical reports — as the
/// default paper selection, because members are deduplicated and reordered
/// to the registry's order.
#[derive(Clone)]
pub struct MetricSelection {
    metrics: Vec<&'static dyn MetricFold>,
}

impl MetricSelection {
    /// The default selection: the paper's four metrics.
    pub fn paper() -> Self {
        MetricSelection {
            metrics: registry().paper().to_vec(),
        }
    }

    /// Every registered metric.
    pub fn all() -> Self {
        MetricSelection {
            metrics: registry().all().to_vec(),
        }
    }

    /// Resolve names (case-insensitive) against the registry. The result
    /// is deduplicated and canonicalized to registry order; an empty list
    /// yields the paper selection.
    pub fn parse<S: AsRef<str>>(names: &[S]) -> Result<Self, UnknownMetric> {
        if names.is_empty() {
            return Ok(MetricSelection::paper());
        }
        let mut wanted: Vec<&'static str> = Vec::with_capacity(names.len());
        for name in names {
            let m = registry()
                .find(name.as_ref())
                .ok_or_else(|| UnknownMetric {
                    name: name.as_ref().to_string(),
                })?;
            if !wanted.contains(&m.name()) {
                wanted.push(m.name());
            }
        }
        Ok(MetricSelection {
            metrics: registry()
                .all()
                .iter()
                .copied()
                .filter(|m| wanted.contains(&m.name()))
                .collect(),
        })
    }

    /// The selected metrics, in registry order.
    pub fn metrics(&self) -> &[&'static dyn MetricFold] {
        &self.metrics
    }

    /// The selected names, in registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.metrics.iter().map(|m| m.name()).collect()
    }

    /// True when a metric of this name (case-insensitive) is selected.
    pub fn contains(&self, name: &str) -> bool {
        self.metrics
            .iter()
            .any(|m| m.name().eq_ignore_ascii_case(name))
    }

    /// Union with metrics named by `names` (already-validated registry
    /// names); the result stays registry-ordered.
    pub fn with_names<S: AsRef<str>>(&self, names: &[S]) -> Result<Self, UnknownMetric> {
        let mut all_names: Vec<String> = self.names().iter().map(|s| s.to_string()).collect();
        all_names.extend(names.iter().map(|s| s.as_ref().to_string()));
        MetricSelection::parse(&all_names)
    }

    /// The union of the selected metrics' [`FoldNeeds`] — what a
    /// [`StreamingMetrics`] must retain to finish all of them.
    pub fn needs(&self) -> FoldNeeds {
        self.metrics
            .iter()
            .fold(FoldNeeds::NONE, |acc, m| acc.union(m.needs()))
    }

    /// True when this is exactly the paper selection (the default).
    pub fn is_paper(&self) -> bool {
        self.names()
            == registry()
                .paper()
                .iter()
                .map(|m| m.name())
                .collect::<Vec<_>>()
    }
}

impl fmt::Debug for MetricSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("MetricSelection")
            .field(&self.names())
            .finish()
    }
}

impl PartialEq for MetricSelection {
    fn eq(&self, other: &Self) -> bool {
        self.names() == other.names()
    }
}

impl Default for MetricSelection {
    fn default() -> Self {
        MetricSelection::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileId, IoRecord, ProcessId};
    use crate::time::Nanos;

    #[test]
    fn table_1_expected_directions() {
        // Paper Table 1: IOPS negative, Bandwidth negative, ARPT positive,
        // BPS negative.
        assert_eq!(Iops.expected_direction(), Direction::Negative);
        assert_eq!(Bandwidth.expected_direction(), Direction::Negative);
        assert_eq!(Arpt.expected_direction(), Direction::Positive);
        assert_eq!(Bps.expected_direction(), Direction::Negative);
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Negative.sign(), -1.0);
        assert_eq!(Direction::Positive.sign(), 1.0);
    }

    #[test]
    fn paper_metrics_order_matches_figures() {
        let names: Vec<&str> = paper_metrics().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["IOPS", "BW", "ARPT", "BPS"]);
    }

    #[test]
    fn registry_names_are_unique_and_stable() {
        let names = registry().names();
        assert_eq!(
            names,
            vec!["IOPS", "BW", "ARPT", "BPS", "P50", "P99", "EffPar", "IOEff", "MaxQD"]
        );
        for (i, a) in names.iter().enumerate() {
            for b in &names[i + 1..] {
                assert!(!a.eq_ignore_ascii_case(b), "duplicate name {a}");
            }
        }
    }

    #[test]
    fn registry_lookup_is_case_insensitive() {
        assert_eq!(registry().find("p99").unwrap().name(), "P99");
        assert_eq!(registry().find("bps").unwrap().name(), "BPS");
        assert_eq!(registry().find("maxqd").unwrap().name(), "MaxQD");
        assert!(registry().find("QPS").is_none());
    }

    #[test]
    fn selection_canonicalizes_to_registry_order() {
        let sel = MetricSelection::parse(&["BPS", "IOPS", "BW", "ARPT"]).unwrap();
        assert_eq!(sel.names(), vec!["IOPS", "BW", "ARPT", "BPS"]);
        assert!(sel.is_paper());
        assert_eq!(sel, MetricSelection::paper());
        // Duplicates collapse; case is normalized.
        let sel = MetricSelection::parse(&["p99", "bps", "P99"]).unwrap();
        assert_eq!(sel.names(), vec!["BPS", "P99"]);
        assert!(!sel.is_paper());
        assert!(sel.contains("p99") && sel.contains("BPS") && !sel.contains("IOPS"));
    }

    #[test]
    fn empty_selection_is_the_paper_default() {
        let sel = MetricSelection::parse::<&str>(&[]).unwrap();
        assert!(sel.is_paper());
    }

    #[test]
    fn unknown_selection_name_lists_the_registry() {
        let e = MetricSelection::parse(&["QPS"]).unwrap_err();
        assert_eq!(e.name, "QPS");
        let shown = e.to_string();
        assert!(shown.contains("unknown metric `QPS`"), "{shown}");
        assert!(shown.contains("IOPS, BW, ARPT, BPS, P50, P99"), "{shown}");
    }

    #[test]
    fn selection_needs_union() {
        assert_eq!(MetricSelection::paper().needs(), FoldNeeds::NONE);
        let sel = MetricSelection::parse(&["p99"]).unwrap();
        assert!(sel.needs().app_durations && !sel.needs().app_intervals);
        let sel = MetricSelection::parse(&["p99", "MaxQD"]).unwrap();
        assert_eq!(sel.needs(), FoldNeeds::ALL);
        assert_eq!(MetricSelection::all().needs(), FoldNeeds::ALL);
    }

    #[test]
    fn selection_with_names_unions() {
        let sel = MetricSelection::parse(&["BPS"]).unwrap();
        let sel = sel.with_names(&["p50", "IOPS"]).unwrap();
        assert_eq!(sel.names(), vec!["IOPS", "BPS", "P50"]);
    }

    #[test]
    fn all_metrics_none_on_empty_trace() {
        let t = Trace::new();
        for m in registry().all() {
            assert!(m.compute(&t).is_none(), "{} on empty trace", m.name());
        }
    }

    #[test]
    fn all_metrics_some_on_single_record() {
        let mut t = Trace::new();
        t.push(IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            0,
            4096,
            Nanos::ZERO,
            Nanos::from_micros(100),
        ));
        for m in paper_metrics() {
            let v = m.compute(&t).unwrap();
            assert!(v.is_finite() && v > 0.0, "{} = {v}", m.name());
        }
        // Extended metrics are defined too (ARPT-positive percentiles,
        // parallelism 1.0, efficiency 1.0, depth 1).
        for m in registry().extended() {
            let v = m.compute(&t).unwrap();
            assert!(v.is_finite() && v > 0.0, "{} = {v}", m.name());
        }
    }

    #[test]
    fn compute_default_method_folds_the_trace() {
        // The provided `Metric::compute` and a hand-driven fold agree.
        let mut t = Trace::new();
        t.push(IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            0,
            1 << 20,
            Nanos::ZERO,
            Nanos::from_millis(10),
        ));
        let mut acc = StreamingMetrics::with_needs(FoldNeeds::ALL);
        acc.push_batch(t.records());
        for m in registry().all() {
            assert_eq!(m.compute(&t), m.finish(&acc), "{}", m.name());
        }
    }
}
