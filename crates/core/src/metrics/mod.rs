//! I/O performance metrics (paper §II and §III).
//!
//! Four metrics from the paper:
//!
//! | Metric | Definition here | Layer | Expected CC vs exec time (Table 1) |
//! |---|---|---|---|
//! | [`Iops`] | application ops / overlapped app I/O time | Application | negative |
//! | [`Bandwidth`] | bytes actually moved / overlapped FS I/O time | FileSystem | negative |
//! | [`Arpt`] | mean per-request response time | Application | positive |
//! | [`Bps`] | required 512 B blocks / overlapped app I/O time | Application | negative |
//!
//! Bandwidth deliberately measures the layer *below* the middleware
//! optimizations — "bandwidth measures the performance of the underlying
//! file systems but BPS measures the performance of the I/O systems" — which
//! is exactly why it correlates in the wrong direction once data sieving
//! moves more data than the application asked for (paper Fig. 12). When a
//! trace carries no file-system-layer records (e.g. a plain POSIX trace from
//! the real-file tracer), bandwidth falls back to the application layer,
//! where it equals `BPS × 512`.
//!
//! [`extended`] adds diagnostics beyond the paper (latency percentiles,
//! effective parallelism, I/O efficiency) used by the ablation studies.

mod arpt;
mod bandwidth;
mod bps;
pub mod extended;
mod iops;

pub use arpt::Arpt;
pub use bandwidth::Bandwidth;
pub use bps::Bps;
pub use iops::Iops;

use crate::trace::Trace;

/// The correlation direction a *well-behaved* metric should exhibit against
/// application execution time (paper Table 1): throughput-like metrics
/// should fall as execution time rises (negative), latency-like metrics
/// should rise with it (positive).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Higher metric ⇒ lower execution time expected.
    Negative,
    /// Higher metric ⇒ higher execution time expected.
    Positive,
}

impl Direction {
    /// +1.0 for `Positive`, −1.0 for `Negative`; multiplying a raw CC by
    /// this sign yields the paper's normalized CC (positive iff the observed
    /// direction matches the expected one).
    pub fn sign(self) -> f64 {
        match self {
            Direction::Negative => -1.0,
            Direction::Positive => 1.0,
        }
    }
}

/// A scalar I/O performance metric computed from a trace.
pub trait Metric {
    /// Short display name ("BPS", "IOPS", ...).
    fn name(&self) -> &'static str;

    /// Expected correlation direction against execution time (Table 1).
    fn expected_direction(&self) -> Direction;

    /// Compute the metric, or `None` when the trace has no relevant records
    /// (an empty trace has no meaningful throughput or latency).
    fn compute(&self, trace: &Trace) -> Option<f64>;

    /// Unit string for reports.
    fn unit(&self) -> &'static str {
        ""
    }
}

/// The paper's four metrics, in the order its figures plot them
/// (IOPS, BW, ARPT, BPS).
pub fn paper_metrics() -> Vec<Box<dyn Metric>> {
    vec![
        Box::new(Iops),
        Box::new(Bandwidth),
        Box::new(Arpt),
        Box::new(Bps),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileId, IoRecord, ProcessId};
    use crate::time::Nanos;

    #[test]
    fn table_1_expected_directions() {
        // Paper Table 1: IOPS negative, Bandwidth negative, ARPT positive,
        // BPS negative.
        assert_eq!(Iops.expected_direction(), Direction::Negative);
        assert_eq!(Bandwidth.expected_direction(), Direction::Negative);
        assert_eq!(Arpt.expected_direction(), Direction::Positive);
        assert_eq!(Bps.expected_direction(), Direction::Negative);
    }

    #[test]
    fn direction_signs() {
        assert_eq!(Direction::Negative.sign(), -1.0);
        assert_eq!(Direction::Positive.sign(), 1.0);
    }

    #[test]
    fn paper_metrics_order_matches_figures() {
        let names: Vec<&str> = paper_metrics().iter().map(|m| m.name()).collect();
        assert_eq!(names, vec!["IOPS", "BW", "ARPT", "BPS"]);
    }

    #[test]
    fn all_metrics_none_on_empty_trace() {
        let t = Trace::new();
        for m in paper_metrics() {
            assert!(m.compute(&t).is_none(), "{} on empty trace", m.name());
        }
    }

    #[test]
    fn all_metrics_some_on_single_record() {
        let mut t = Trace::new();
        t.push(IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            0,
            4096,
            Nanos::ZERO,
            Nanos::from_micros(100),
        ));
        for m in paper_metrics() {
            let v = m.compute(&t).unwrap();
            assert!(v.is_finite() && v > 0.0, "{} = {v}", m.name());
        }
    }
}
