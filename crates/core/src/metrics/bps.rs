//! BPS — Blocks Per Second, the paper's contribution (equation (1)).

use super::{Direction, MetricFold};
use crate::batch::RecordBatch;
use crate::record::Layer;
use crate::sink::StreamingMetrics;

/// `BPS = B / T` where `B` is the number of 512-byte blocks *required by the
/// application* (all accesses counted, successful or not, concurrent or not)
/// and `T` is the overlapped I/O access time: the union of all in-flight
/// intervals, excluding idle periods (paper Figure 2).
///
/// Two properties distinguish BPS from the conventional metrics:
///
/// * the numerator counts what the application *asked for*, so extra data
///   movement injected by optimizations (data sieving holes, prefetch
///   overshoot) does not inflate it the way it inflates bandwidth;
/// * the denominator counts wall time only while I/O is in flight and counts
///   overlapping accesses once, so concurrency shows up as *more blocks in
///   the same time* rather than being averaged away as in ARPT.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bps;

impl MetricFold for Bps {
    fn name(&self) -> &'static str {
        "BPS"
    }

    fn expected_direction(&self) -> Direction {
        Direction::Negative
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let blocks = acc.blocks(Layer::Application);
        let t = acc.overlapped_io_time(Layer::Application);
        if acc.op_count(Layer::Application) == 0 || t.is_zero() {
            return None;
        }
        Some(blocks as f64 / t.as_secs_f64())
    }

    /// Columnar `B / T`: one vectorizable block-sum over the byte column
    /// and one hull pass over the start/end columns. Same integer
    /// operands as the streaming path, so bit-identical.
    fn fold_columns(&self, batch: &RecordBatch) -> Option<f64> {
        if batch.count(Layer::Application) == 0 {
            return None;
        }
        let t = batch.union_time(Layer::Application);
        if t.is_zero() {
            return None;
        }
        Some(batch.sum_blocks(Layer::Application) as f64 / t.as_secs_f64())
    }

    fn unit(&self) -> &'static str {
        "blocks/s"
    }

    fn describe(&self) -> &'static str {
        "required 512 B blocks / overlapped app I/O time (the paper's metric)"
    }

    fn col_precision(&self) -> usize {
        1
    }

    fn csv_label(&self) -> &'static str {
        "bps"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::record::{FileId, IoRecord, ProcessId};
    use crate::time::Nanos;
    use crate::trace::Trace;

    fn read(pid: u32, bytes: u64, s_ms: u64, e_ms: u64) -> IoRecord {
        IoRecord::app_read(
            ProcessId(pid),
            FileId(0),
            0,
            bytes,
            Nanos::from_millis(s_ms),
            Nanos::from_millis(e_ms),
        )
    }

    #[test]
    fn sequential_requests_sum_time() {
        // Two 512 KiB reads back to back over 2 x 10 ms.
        let t = Trace::from_records(vec![read(0, 512 << 10, 0, 10), read(0, 512 << 10, 10, 20)]);
        let v = Bps.compute(&t).unwrap();
        assert!((v - 2048.0 / 0.020).abs() < 1e-6);
    }

    #[test]
    fn concurrency_counted_once() {
        // The same two reads fully overlapped: double the rate.
        let t = Trace::from_records(vec![read(0, 512 << 10, 0, 10), read(1, 512 << 10, 0, 10)]);
        let v = Bps.compute(&t).unwrap();
        assert!((v - 2048.0 / 0.010).abs() < 1e-6);
    }

    #[test]
    fn idle_time_excluded() {
        // 10 ms busy, 80 ms idle, 10 ms busy: denominator is 20 ms.
        let t = Trace::from_records(vec![read(0, 512 << 10, 0, 10), read(0, 512 << 10, 90, 100)]);
        let v = Bps.compute(&t).unwrap();
        assert!((v - 2048.0 / 0.020).abs() < 1e-6);
    }

    #[test]
    fn split_invariance_paper_fig_1a() {
        // Figure 1(a): one 2S request in time T vs two S requests in T/2
        // each, back to back. BPS is identical; IOPS is not.
        let merged = Trace::from_records(vec![read(0, 1 << 20, 0, 10)]);
        let split = Trace::from_records(vec![read(0, 512 << 10, 0, 5), read(0, 512 << 10, 5, 10)]);
        let a = Bps.compute(&merged).unwrap();
        let b = Bps.compute(&split).unwrap();
        assert!((a - b).abs() < 1e-6);
    }

    #[test]
    fn none_when_zero_time() {
        // A degenerate instantaneous record: T = 0 ⇒ undefined.
        let t = Trace::from_records(vec![read(0, 512, 5, 5)]);
        assert!(Bps.compute(&t).is_none());
        assert!(Bps.compute(&Trace::new()).is_none());
    }

    #[test]
    fn fs_layer_records_do_not_affect_bps() {
        use crate::record::{IoOp, Layer};
        let mut t = Trace::from_records(vec![read(0, 1 << 20, 0, 10)]);
        let before = Bps.compute(&t).unwrap();
        // Sieving moved 4x the data at the FS layer.
        t.push(IoRecord::new(
            ProcessId(0),
            IoOp::Read,
            FileId(0),
            0,
            4 << 20,
            Nanos::ZERO,
            Nanos::from_millis(10),
            Layer::FileSystem,
        ));
        assert_eq!(Bps.compute(&t).unwrap(), before);
    }
}
