//! Diagnostics beyond the paper's four metrics.
//!
//! These are not part of the reproduced evaluation; they exist because the
//! paper's conclusion promises "an easy-to-use toolkit", and a toolkit that
//! can only print four numbers is not easy to use. The ablation benches also
//! rely on them (e.g. effective parallelism to verify the concurrency
//! experiments actually varied concurrency).
//!
//! Like the paper four, each is a [`MetricFold`] over the shared
//! [`StreamingMetrics`] accumulator; the percentiles and queue depth
//! declare [`FoldNeeds`] so the sink retains the per-record state their
//! `finish` reads (the only registered metrics that are not constant-space).

use super::{Direction, FoldNeeds, MetricFold};
use crate::interval::ConcurrencyProfile;
use crate::record::Layer;
use crate::sink::StreamingMetrics;

/// A latency percentile over application request response times, in seconds.
///
/// `LatencyPercentile::P99` answers the tail-latency question ARPT hides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentile(
    /// Percentile rank in (0, 100].
    pub f64,
);

impl LatencyPercentile {
    /// Median response time.
    pub const P50: LatencyPercentile = LatencyPercentile(50.0);
    /// 99th percentile response time.
    pub const P99: LatencyPercentile = LatencyPercentile(99.0);
}

impl MetricFold for LatencyPercentile {
    fn name(&self) -> &'static str {
        // Stable static names for the common ranks; callers needing exotic
        // ranks format their own labels from `self.0`.
        if self.0 == 50.0 {
            "P50"
        } else if self.0 == 99.0 {
            "P99"
        } else {
            "Pxx"
        }
    }

    fn expected_direction(&self) -> Direction {
        Direction::Positive
    }

    fn needs(&self) -> FoldNeeds {
        FoldNeeds {
            app_durations: true,
            ..FoldNeeds::NONE
        }
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let mut durs: Vec<f64> = acc
            .app_durations()?
            .iter()
            .map(|d| d.as_secs_f64())
            .collect();
        if durs.is_empty() {
            return None;
        }
        durs.sort_unstable_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
        // Nearest-rank percentile.
        let rank = ((self.0 / 100.0) * durs.len() as f64).ceil() as usize;
        Some(durs[rank.clamp(1, durs.len()) - 1])
    }

    fn unit(&self) -> &'static str {
        "s"
    }

    fn describe(&self) -> &'static str {
        if self.0 == 50.0 {
            "median application response time"
        } else if self.0 == 99.0 {
            "99th-percentile application response time (tail latency)"
        } else {
            "nearest-rank application response time percentile"
        }
    }

    fn col_label(&self) -> &'static str {
        if self.0 == 50.0 {
            "P50(s)"
        } else if self.0 == 99.0 {
            "P99(s)"
        } else {
            "Pxx(s)"
        }
    }

    fn col_precision(&self) -> usize {
        6
    }

    fn csv_label(&self) -> &'static str {
        if self.0 == 50.0 {
            "p50_s"
        } else if self.0 == 99.0 {
            "p99_s"
        } else {
            "pxx_s"
        }
    }
}

/// Effective parallelism: summed response time divided by overlapped I/O
/// time. 1.0 means strictly sequential I/O; N means N requests were in
/// flight on average while the system was busy.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EffectiveParallelism;

impl MetricFold for EffectiveParallelism {
    fn name(&self) -> &'static str {
        "EffPar"
    }

    fn expected_direction(&self) -> Direction {
        Direction::Negative
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let t = acc.overlapped_io_time(Layer::Application);
        if acc.op_count(Layer::Application) == 0 || t.is_zero() {
            return None;
        }
        Some(acc.summed_io_time(Layer::Application).as_secs_f64() / t.as_secs_f64())
    }

    fn unit(&self) -> &'static str {
        "x"
    }

    fn describe(&self) -> &'static str {
        "mean in-flight requests while busy (summed / overlapped time)"
    }

    fn csv_label(&self) -> &'static str {
        "eff_par"
    }
}

/// I/O efficiency: bytes the application required divided by bytes the file
/// system actually moved, in (0, 1]. 1.0 means no wasted movement; data
/// sieving with wide holes drives this toward 0.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoEfficiency;

impl MetricFold for IoEfficiency {
    fn name(&self) -> &'static str {
        "IOEff"
    }

    fn expected_direction(&self) -> Direction {
        Direction::Negative
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let required = acc.bytes(Layer::Application);
        let moved = if acc.op_count(Layer::FileSystem) > 0 {
            acc.bytes(Layer::FileSystem)
        } else {
            required
        };
        if moved == 0 {
            return None;
        }
        Some(required as f64 / moved as f64)
    }

    fn unit(&self) -> &'static str {
        "ratio"
    }

    fn describe(&self) -> &'static str {
        "bytes the app required / bytes the file system moved"
    }

    fn col_precision(&self) -> usize {
        4
    }

    fn csv_label(&self) -> &'static str {
        "io_eff"
    }
}

/// Maximum number of simultaneously in-flight application requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaxQueueDepth;

impl MetricFold for MaxQueueDepth {
    fn name(&self) -> &'static str {
        "MaxQD"
    }

    fn expected_direction(&self) -> Direction {
        Direction::Negative
    }

    fn needs(&self) -> FoldNeeds {
        FoldNeeds {
            app_intervals: true,
            ..FoldNeeds::NONE
        }
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let intervals = acc.app_intervals()?;
        if acc.op_count(Layer::Application) == 0 {
            return None;
        }
        // The profile's event sweep sorts internally, so arrival order is
        // irrelevant and the streamed result matches the trace path exactly.
        let profile = ConcurrencyProfile::from_intervals(intervals.iter().copied());
        Some(f64::from(profile.max_depth))
    }

    fn unit(&self) -> &'static str {
        "reqs"
    }

    fn describe(&self) -> &'static str {
        "peak simultaneously in-flight application requests"
    }

    fn col_precision(&self) -> usize {
        0
    }

    fn csv_label(&self) -> &'static str {
        "max_qd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::record::{FileId, IoOp, IoRecord, ProcessId};
    use crate::time::Nanos;
    use crate::trace::Trace;

    fn read(pid: u32, s_ms: u64, e_ms: u64) -> IoRecord {
        IoRecord::app_read(
            ProcessId(pid),
            FileId(0),
            0,
            1 << 20,
            Nanos::from_millis(s_ms),
            Nanos::from_millis(e_ms),
        )
    }

    #[test]
    fn percentiles_nearest_rank() {
        // Durations 1..=10 ms.
        let t = Trace::from_records((0..10).map(|i| read(0, i * 20, i * 20 + i + 1)).collect());
        let p50 = LatencyPercentile::P50.compute(&t).unwrap();
        assert!((p50 - 0.005).abs() < 1e-9);
        let p99 = LatencyPercentile::P99.compute(&t).unwrap();
        assert!((p99 - 0.010).abs() < 1e-9);
        assert!(LatencyPercentile::P50.compute(&Trace::new()).is_none());
    }

    #[test]
    fn effective_parallelism_sequential_vs_concurrent() {
        let seq = Trace::from_records(vec![read(0, 0, 10), read(0, 10, 20)]);
        assert!((EffectiveParallelism.compute(&seq).unwrap() - 1.0).abs() < 1e-9);
        let conc = Trace::from_records(vec![read(0, 0, 10), read(1, 0, 10), read(2, 0, 10)]);
        assert!((EffectiveParallelism.compute(&conc).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn io_efficiency_tracks_waste() {
        let mut t = Trace::from_records(vec![read(0, 0, 10)]);
        assert!((IoEfficiency.compute(&t).unwrap() - 1.0).abs() < 1e-12);
        t.push(IoRecord::new(
            ProcessId(0),
            IoOp::Read,
            FileId(0),
            0,
            4 << 20,
            Nanos::ZERO,
            Nanos::from_millis(10),
            Layer::FileSystem,
        ));
        assert!((IoEfficiency.compute(&t).unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_queue_depth() {
        let t = Trace::from_records(vec![read(0, 0, 10), read(1, 5, 15), read(2, 6, 8)]);
        assert_eq!(MaxQueueDepth.compute(&t), Some(3.0));
        assert!(MaxQueueDepth.compute(&Trace::new()).is_none());
    }

    #[test]
    fn needy_metrics_are_none_without_their_state() {
        // A sink built without the retained state cannot finish the
        // percentiles or queue depth — None, not a wrong answer.
        use crate::sink::{RecordSink, StreamingMetrics};
        let mut bare = StreamingMetrics::new();
        bare.on_record(&read(0, 0, 10));
        assert!(LatencyPercentile::P99.finish(&bare).is_none());
        assert!(MaxQueueDepth.finish(&bare).is_none());
        // EffPar and IOEff need nothing extra.
        assert!(EffectiveParallelism.finish(&bare).is_some());
        assert!(IoEfficiency.finish(&bare).is_some());

        let mut full = StreamingMetrics::with_needs(FoldNeeds::ALL);
        full.on_record(&read(0, 0, 10));
        assert_eq!(LatencyPercentile::P99.finish(&full), Some(0.010));
        assert_eq!(MaxQueueDepth.finish(&full), Some(1.0));
    }
}
