//! Bandwidth — data rate through the file system (paper §II).

use super::{Direction, MetricFold};
use crate::batch::RecordBatch;
use crate::record::Layer;
use crate::sink::StreamingMetrics;

/// Bytes *actually moved* through the file system, divided by the overlapped
/// I/O time at that layer, in MB/s (1 MB = 10^6 bytes).
///
/// "The main difference is that bandwidth measures the performance of the
/// underlying file systems but BPS measures the performance of the I/O
/// systems." With data sieving enabled, the middleware reads file holes the
/// application never asked for: the file system moves more bytes and posts
/// a *higher* bandwidth while the application gets *slower* — the wrong-way
/// correlation of the paper's Figure 12 and Figure 1(b).
///
/// Traces with no file-system-layer records (plain application traces) fall
/// back to the application layer, where bandwidth is simply `BPS × 512`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Bandwidth;

/// Bytes per megabyte for bandwidth reporting.
const MB: f64 = 1e6;

impl Bandwidth {
    /// The layer bandwidth measures: the file system when it was
    /// instrumented, otherwise the application layer.
    ///
    /// **Fallback invariant**: when a stream carries no file-system-layer
    /// records, bandwidth measures the *same* bytes over the *same*
    /// overlapped time as BPS, so for 512-byte-aligned requests (where
    /// `bytes == blocks × 512` exactly) `BW × 10^6 == BPS × 512` up to the
    /// MB rescaling's rounding — the fallback degrades bandwidth into a
    /// rescaled BPS rather than silently reporting 0 MB/s for
    /// un-instrumented traces.
    pub fn measurement_layer(acc: &StreamingMetrics) -> Layer {
        if acc.op_count(Layer::FileSystem) > 0 {
            Layer::FileSystem
        } else {
            Layer::Application
        }
    }
}

impl MetricFold for Bandwidth {
    fn name(&self) -> &'static str {
        "BW"
    }

    fn expected_direction(&self) -> Direction {
        Direction::Negative
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let layer = Bandwidth::measurement_layer(acc);
        let bytes = acc.bytes(layer);
        let t = acc.overlapped_io_time(layer);
        if acc.op_count(layer) == 0 || t.is_zero() {
            return None;
        }
        Some(bytes as f64 / MB / t.as_secs_f64())
    }

    /// Columnar byte rate with the same FS→application layer fallback as
    /// the streaming path: a byte-column sum plus one hull pass at the
    /// measured layer.
    fn fold_columns(&self, batch: &RecordBatch) -> Option<f64> {
        let layer = if batch.count(Layer::FileSystem) > 0 {
            Layer::FileSystem
        } else {
            Layer::Application
        };
        if batch.count(layer) == 0 {
            return None;
        }
        let t = batch.union_time(layer);
        if t.is_zero() {
            return None;
        }
        Some(batch.sum_bytes(layer) as f64 / MB / t.as_secs_f64())
    }

    fn unit(&self) -> &'static str {
        "MB/s"
    }

    fn describe(&self) -> &'static str {
        "bytes moved by the file system / overlapped FS I/O time"
    }

    fn col_label(&self) -> &'static str {
        "BW(MB/s)"
    }

    fn col_precision(&self) -> usize {
        2
    }

    fn csv_label(&self) -> &'static str {
        "bw_mbs"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Bps, Metric};
    use crate::record::{FileId, IoOp, IoRecord, ProcessId};
    use crate::sink::RecordSink;
    use crate::time::Nanos;
    use crate::trace::Trace;

    fn rec(layer: Layer, bytes: u64, s_ms: u64, e_ms: u64) -> IoRecord {
        IoRecord::new(
            ProcessId(0),
            IoOp::Read,
            FileId(0),
            0,
            bytes,
            Nanos::from_millis(s_ms),
            Nanos::from_millis(e_ms),
            layer,
        )
    }

    #[test]
    fn measures_fs_layer_when_present() {
        let mut t = Trace::new();
        // App asked for 1 MB over 10 ms.
        t.push(rec(Layer::Application, 1_000_000, 0, 10));
        // Sieving moved 4 MB through the FS in the same window.
        t.push(rec(Layer::FileSystem, 4_000_000, 0, 10));
        let bw = Bandwidth.compute(&t).unwrap();
        assert!((bw - 400.0).abs() < 1e-6);
    }

    #[test]
    fn figure_1b_bandwidth_rewards_extra_movement() {
        // Left: FS moves exactly what the app needs (1 MB in 10 ms).
        let mut left = Trace::new();
        left.push(rec(Layer::Application, 1_000_000, 0, 10));
        left.push(rec(Layer::FileSystem, 1_000_000, 0, 10));
        // Right: same app demand and same 10 ms, but FS moved 2 MB.
        let mut right = Trace::new();
        right.push(rec(Layer::Application, 1_000_000, 0, 10));
        right.push(rec(Layer::FileSystem, 2_000_000, 0, 10));

        // Bandwidth says "right is twice as good"...
        let bl = Bandwidth.compute(&left).unwrap();
        let br = Bandwidth.compute(&right).unwrap();
        assert!(br > 1.9 * bl);
        // ...while the overall I/O performance seen by the app is unchanged:
        // BPS is identical.
        let pl = Bps.compute(&left).unwrap();
        let pr = Bps.compute(&right).unwrap();
        assert!((pl - pr).abs() < 1e-9);
    }

    #[test]
    fn falls_back_to_app_layer() {
        let t = Trace::from_records(vec![rec(Layer::Application, 2_000_000, 0, 10)]);
        let bw = Bandwidth.compute(&t).unwrap();
        assert!((bw - 200.0).abs() < 1e-6);
    }

    #[test]
    fn fallback_layer_choice_is_explicit() {
        let mut acc = StreamingMetrics::new();
        acc.on_record(&rec(Layer::Application, 2_000_000, 0, 10));
        assert_eq!(Bandwidth::measurement_layer(&acc), Layer::Application);
        acc.on_record(&rec(Layer::FileSystem, 2_000_000, 0, 10));
        assert_eq!(Bandwidth::measurement_layer(&acc), Layer::FileSystem);
    }

    #[test]
    fn fallback_equals_bps_times_block_size() {
        // The documented invariant: with no FS records and 512-aligned
        // requests, BW × 10^6 == BPS × 512 — both divide the same integer
        // byte/block sums by the same overlapped time (they differ only by
        // the MB rescaling, so agreement is to the last couple of ulps).
        let t = Trace::from_records(vec![
            rec(Layer::Application, 512 * 1000, 0, 10),
            rec(Layer::Application, 512 * 4096, 7, 23),
            rec(Layer::Application, 512 * 17, 40, 41),
        ]);
        let bw = Bandwidth.compute(&t).unwrap();
        let bps = Bps.compute(&t).unwrap();
        let (a, b) = (bw * 1e6, bps * 512.0);
        assert!((a - b).abs() <= 1e-12 * a.abs(), "{a} vs {b}");
    }

    #[test]
    fn empty_is_none() {
        assert!(Bandwidth.compute(&Trace::new()).is_none());
    }
}
