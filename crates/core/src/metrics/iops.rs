//! IOPS — Input/Output Operations Per Second (paper §II).

use super::{Direction, MetricFold};
use crate::batch::RecordBatch;
use crate::record::Layer;
use crate::sink::StreamingMetrics;

/// Number of application I/O operations divided by the overlapped I/O time.
///
/// IOPS "works well to evaluate I/O performance for fixed-size I/O requests"
/// but ignores request sizes entirely: in the paper's Figure 1(a), two small
/// requests served in 2T score the same IOPS as one doubled request served
/// in T, even though the latter halves the I/O time. Figure 7 shows the
/// consequence: growing the record size from 4 KB to 64 KB drops IOPS from
/// 5156 to 732 while the application runs 2.3× *faster*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Iops;

impl MetricFold for Iops {
    fn name(&self) -> &'static str {
        "IOPS"
    }

    fn expected_direction(&self) -> Direction {
        Direction::Negative
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let ops = acc.op_count(Layer::Application);
        let t = acc.overlapped_io_time(Layer::Application);
        if ops == 0 || t.is_zero() {
            return None;
        }
        Some(ops as f64 / t.as_secs_f64())
    }

    /// Columnar ops-over-time: a layer count and one hull pass over the
    /// start/end columns; no per-row reassembly.
    fn fold_columns(&self, batch: &RecordBatch) -> Option<f64> {
        let ops = batch.count(Layer::Application);
        if ops == 0 {
            return None;
        }
        let t = batch.union_time(Layer::Application);
        if t.is_zero() {
            return None;
        }
        Some(ops as f64 / t.as_secs_f64())
    }

    fn unit(&self) -> &'static str {
        "ops/s"
    }

    fn describe(&self) -> &'static str {
        "application operations / overlapped app I/O time"
    }

    fn col_precision(&self) -> usize {
        1
    }

    fn csv_label(&self) -> &'static str {
        "iops"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Metric;
    use crate::record::{FileId, IoRecord, ProcessId};
    use crate::time::Nanos;
    use crate::trace::Trace;

    fn read(bytes: u64, s_ms: u64, e_ms: u64) -> IoRecord {
        IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            0,
            bytes,
            Nanos::from_millis(s_ms),
            Nanos::from_millis(e_ms),
        )
    }

    #[test]
    fn figure_1a_iops_blind_to_size() {
        // Left: two size-S requests, T each, sequential → 2 ops / 2T.
        let left = Trace::from_records(vec![read(4096, 0, 10), read(4096, 10, 20)]);
        // Right: one size-2S request in T → 1 op / T.
        let right = Trace::from_records(vec![read(8192, 0, 10)]);
        let l = Iops.compute(&left).unwrap();
        let r = Iops.compute(&right).unwrap();
        // Identical IOPS (1/T = 100/s) despite the right case finishing in
        // half the time — the paper's mismatch.
        assert!((l - r).abs() < 1e-9);
        assert!((l - 100.0).abs() < 1e-9);
    }

    #[test]
    fn counts_all_ops_per_second() {
        let t = Trace::from_records(vec![read(1, 0, 1), read(1, 1, 2), read(1, 2, 4)]);
        assert!((Iops.compute(&t).unwrap() - 3.0 / 0.004).abs() < 1e-6);
    }

    #[test]
    fn empty_is_none() {
        assert!(Iops.compute(&Trace::new()).is_none());
    }
}
