//! ARPT — Average ResPonse Time (paper §II).

use super::{Direction, MetricFold};
use crate::batch::RecordBatch;
use crate::record::Layer;
use crate::sink::StreamingMetrics;

/// The arithmetic mean of all application I/O request response times, in
/// seconds.
///
/// "As ARPT does not consider the I/O access concurrency, it is also not
/// suitable to measure the performance of the overall I/O systems": in the
/// paper's Figure 1(c), two sequential requests and two fully concurrent
/// requests have the same ARPT `T`, even though the concurrent case finishes
/// in half the wall time. Figures 9–11 show ARPT correlating in the wrong
/// direction once concurrency varies.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Arpt;

impl MetricFold for Arpt {
    fn name(&self) -> &'static str {
        "ARPT"
    }

    fn expected_direction(&self) -> Direction {
        Direction::Positive
    }

    fn finish(&self, acc: &StreamingMetrics) -> Option<f64> {
        let ops = acc.op_count(Layer::Application);
        if ops == 0 {
            return None;
        }
        let summed = acc.summed_io_time(Layer::Application);
        Some(summed.as_secs_f64() / ops as f64)
    }

    /// Columnar mean response time: one vectorizable `end − start` sum —
    /// ARPT needs no interval union at all.
    fn fold_columns(&self, batch: &RecordBatch) -> Option<f64> {
        let ops = batch.count(Layer::Application);
        if ops == 0 {
            return None;
        }
        let summed = batch.sum_durations(Layer::Application);
        Some(summed.as_secs_f64() / ops as f64)
    }

    fn unit(&self) -> &'static str {
        "s"
    }

    fn describe(&self) -> &'static str {
        "mean application request response time"
    }

    fn col_label(&self) -> &'static str {
        "ARPT(s)"
    }

    fn col_precision(&self) -> usize {
        6
    }

    fn csv_label(&self) -> &'static str {
        "arpt_s"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Bps, Metric};
    use crate::record::{FileId, IoRecord, ProcessId};
    use crate::time::Nanos;
    use crate::trace::Trace;

    fn read(pid: u32, s_ms: u64, e_ms: u64) -> IoRecord {
        IoRecord::app_read(
            ProcessId(pid),
            FileId(0),
            0,
            1 << 20,
            Nanos::from_millis(s_ms),
            Nanos::from_millis(e_ms),
        )
    }

    #[test]
    fn figure_1c_arpt_blind_to_concurrency() {
        // Sequential: R1=[0,10), R2=[10,20). Concurrent: both [0,10).
        let sequential = Trace::from_records(vec![read(0, 0, 10), read(0, 10, 20)]);
        let concurrent = Trace::from_records(vec![read(0, 0, 10), read(1, 0, 10)]);

        let a_seq = Arpt.compute(&sequential).unwrap();
        let a_con = Arpt.compute(&concurrent).unwrap();
        // Same ARPT = T = 10 ms...
        assert!((a_seq - a_con).abs() < 1e-12);
        assert!((a_seq - 0.010).abs() < 1e-12);

        // ...but BPS sees the concurrent case running twice as fast.
        let b_seq = Bps.compute(&sequential).unwrap();
        let b_con = Bps.compute(&concurrent).unwrap();
        assert!((b_con / b_seq - 2.0).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_mean() {
        let t = Trace::from_records(vec![read(0, 0, 10), read(0, 10, 40)]);
        assert!((Arpt.compute(&t).unwrap() - 0.020).abs() < 1e-12);
    }

    #[test]
    fn empty_is_none() {
        assert!(Arpt.compute(&Trace::new()).is_none());
    }
}
