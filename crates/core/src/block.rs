//! Block arithmetic.
//!
//! The paper defines BPS in units of I/O *blocks* "because I/O systems
//! usually read/write data from/to a block device", using the canonical
//! 512-byte block. `B` in equation (1) is the number of blocks *required by
//! the application*, so partial blocks round up: a 1-byte request still
//! costs one block of data movement at the device.

/// Canonical block size used by the BPS metric (bytes).
pub const BLOCK_SIZE: u64 = 512;

/// Number of `BLOCK_SIZE` blocks needed to hold `bytes` bytes (ceiling
/// division). Zero bytes is zero blocks.
///
/// ```
/// use bps_core::block::{blocks_for_bytes, BLOCK_SIZE};
/// assert_eq!(blocks_for_bytes(0), 0);
/// assert_eq!(blocks_for_bytes(1), 1);
/// assert_eq!(blocks_for_bytes(BLOCK_SIZE), 1);
/// assert_eq!(blocks_for_bytes(BLOCK_SIZE + 1), 2);
/// ```
pub const fn blocks_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(BLOCK_SIZE)
}

/// Number of bytes spanned by `blocks` whole blocks.
pub const fn bytes_for_blocks(blocks: u64) -> u64 {
    blocks * BLOCK_SIZE
}

/// Round `bytes` up to the next block boundary.
pub const fn round_up_to_block(bytes: u64) -> u64 {
    bytes_for_blocks(blocks_for_bytes(bytes))
}

/// Round an absolute byte offset down to its containing block boundary.
pub const fn block_aligned_offset(offset: u64) -> u64 {
    offset - offset % BLOCK_SIZE
}

/// The half-open block range `[first, last)` touched by the byte extent
/// `[offset, offset + len)`. An empty extent touches no blocks.
pub fn block_range(offset: u64, len: u64) -> (u64, u64) {
    if len == 0 {
        return (offset / BLOCK_SIZE, offset / BLOCK_SIZE);
    }
    let first = offset / BLOCK_SIZE;
    let last = (offset + len - 1) / BLOCK_SIZE + 1;
    (first, last)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceiling_division() {
        assert_eq!(blocks_for_bytes(0), 0);
        assert_eq!(blocks_for_bytes(511), 1);
        assert_eq!(blocks_for_bytes(512), 1);
        assert_eq!(blocks_for_bytes(513), 2);
        assert_eq!(blocks_for_bytes(1 << 20), 2048);
    }

    #[test]
    fn roundtrip_whole_blocks() {
        for b in [0u64, 1, 7, 1024] {
            assert_eq!(blocks_for_bytes(bytes_for_blocks(b)), b);
        }
    }

    #[test]
    fn round_up_is_idempotent_and_aligned() {
        for bytes in [0u64, 1, 511, 512, 513, 4095, 4096] {
            let r = round_up_to_block(bytes);
            assert!(r >= bytes);
            assert_eq!(r % BLOCK_SIZE, 0);
            assert_eq!(round_up_to_block(r), r);
        }
    }

    #[test]
    fn block_range_covers_extent() {
        // A request straddling one block boundary touches two blocks.
        let (first, last) = block_range(500, 24);
        assert_eq!((first, last), (0, 2));
        // Aligned single-block request.
        assert_eq!(block_range(512, 512), (1, 2));
        // Empty request touches nothing.
        let (f, l) = block_range(1000, 0);
        assert_eq!(f, l);
    }

    #[test]
    fn aligned_offset() {
        assert_eq!(block_aligned_offset(0), 0);
        assert_eq!(block_aligned_offset(511), 0);
        assert_eq!(block_aligned_offset(512), 512);
        assert_eq!(block_aligned_offset(1025), 1024);
    }
}
