//! Time-windowed metric series.
//!
//! A single BPS number summarizes a whole run; phase-structured
//! applications (compute/I/O bursts) also want the metric *over time*.
//! [`windowed_series`] slices a trace into fixed windows and evaluates the
//! metrics within each, clipping in-flight records at window edges so a
//! request spanning windows contributes its overlap to each.

use crate::interval::{union_time, Interval};
use crate::record::Layer;
use crate::time::{Dur, Nanos};
use crate::trace::Trace;
use serde::Serialize;

/// One window's worth of activity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct WindowPoint {
    /// Window start.
    pub start: Nanos,
    /// Window length.
    pub len: Dur,
    /// Blocks whose transfer overlapped this window, prorated by time
    /// overlap.
    pub blocks: f64,
    /// Overlapped I/O time within the window.
    pub io_time: Dur,
    /// BPS within the window (`None` when no I/O was in flight).
    pub bps: Option<f64>,
    /// Requests active at any point in the window.
    pub active_requests: u64,
}

/// Slice the application layer of a trace into `window`-sized buckets.
///
/// A record overlapping a window contributes (a) its in-flight interval
/// clipped to the window for `io_time`, and (b) its blocks prorated by the
/// clipped fraction of its duration (an instantaneous record contributes
/// all its blocks to the window containing it).
///
/// ```
/// use bps_core::prelude::*;
/// use bps_core::window::windowed_series;
/// let trace = Trace::from_records(vec![IoRecord::app_read(
///     ProcessId(0), FileId(0), 0, 512 * 100,
///     Nanos::ZERO, Nanos::from_millis(20),
/// )]);
/// let series = windowed_series(&trace, Dur::from_millis(10));
/// assert_eq!(series.len(), 2);
/// // Half the blocks land in each 10 ms window.
/// assert!((series[0].blocks - 50.0).abs() < 1e-9);
/// ```
pub fn windowed_series(trace: &Trace, window: Dur) -> Vec<WindowPoint> {
    assert!(!window.is_zero(), "window must be positive");
    let (first, last) = match (trace.first_start(), trace.last_end()) {
        (Some(f), Some(l)) => (f, l),
        _ => return Vec::new(),
    };
    let span = last - first;
    let buckets = (span.0.div_ceil(window.0)).max(1) as usize;
    let mut out: Vec<WindowPoint> = (0..buckets)
        .map(|i| WindowPoint {
            start: first + window * i as u64,
            len: window,
            blocks: 0.0,
            io_time: Dur::ZERO,
            bps: None,
            active_requests: 0,
        })
        .collect();

    // Gather per-bucket clipped intervals (for the union) and blocks.
    let mut per_bucket: Vec<Vec<Interval>> = vec![Vec::new(); buckets];
    for r in trace.layer(Layer::Application) {
        let dur = r.duration();
        let b_first = ((r.start - first).0 / window.0) as usize;
        let b_last = if r.end > r.start {
            (((r.end - first).0 - 1) / window.0) as usize
        } else {
            b_first
        };
        for (b, point) in out
            .iter_mut()
            .enumerate()
            .take((b_last + 1).min(buckets))
            .skip(b_first)
        {
            let w_start = first + window * b as u64;
            let w_end = w_start + window;
            let clip = Interval {
                start: r.start.max(w_start),
                end: r.end.min(w_end),
            };
            point.active_requests += 1;
            if dur.is_zero() {
                // Instantaneous record: all blocks land here.
                point.blocks += r.blocks() as f64;
            } else {
                let frac = clip.duration().as_secs_f64() / dur.as_secs_f64();
                point.blocks += r.blocks() as f64 * frac;
                per_bucket[b].push(clip);
            }
        }
    }
    for (b, point) in out.iter_mut().enumerate() {
        point.io_time = union_time(per_bucket[b].iter().copied());
        if !point.io_time.is_zero() {
            point.bps = Some(point.blocks / point.io_time.as_secs_f64());
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileId, IoRecord, ProcessId};

    fn read(bytes: u64, s_ms: u64, e_ms: u64) -> IoRecord {
        IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            0,
            bytes,
            Nanos::from_millis(s_ms),
            Nanos::from_millis(e_ms),
        )
    }

    #[test]
    fn empty_trace_empty_series() {
        assert!(windowed_series(&Trace::new(), Dur::from_millis(10)).is_empty());
    }

    #[test]
    fn single_record_single_window() {
        let t = Trace::from_records(vec![read(512 * 100, 0, 10)]);
        let s = windowed_series(&t, Dur::from_millis(10));
        assert_eq!(s.len(), 1);
        assert!((s[0].blocks - 100.0).abs() < 1e-9);
        assert_eq!(s[0].io_time, Dur::from_millis(10));
        assert!((s[0].bps.unwrap() - 100.0 / 0.010).abs() < 1e-6);
    }

    #[test]
    fn record_spanning_windows_is_prorated() {
        // 20 ms record over two 10 ms windows: half the blocks each.
        let t = Trace::from_records(vec![read(512 * 100, 0, 20)]);
        let s = windowed_series(&t, Dur::from_millis(10));
        assert_eq!(s.len(), 2);
        assert!((s[0].blocks - 50.0).abs() < 1e-9);
        assert!((s[1].blocks - 50.0).abs() < 1e-9);
        // Each window is fully busy.
        assert_eq!(s[0].io_time, Dur::from_millis(10));
        assert_eq!(s[1].io_time, Dur::from_millis(10));
        // Window BPS equals whole-run BPS for a uniform transfer.
        let whole = 100.0 / 0.020;
        assert!((s[0].bps.unwrap() - whole).abs() < 1e-6);
    }

    #[test]
    fn idle_windows_have_no_bps() {
        // Burst, 30 ms idle, burst.
        let t = Trace::from_records(vec![read(512 * 10, 0, 10), read(512 * 10, 40, 50)]);
        let s = windowed_series(&t, Dur::from_millis(10));
        assert_eq!(s.len(), 5);
        assert!(s[0].bps.is_some());
        assert!(s[1].bps.is_none() && s[2].bps.is_none() && s[3].bps.is_none());
        assert!(s[4].bps.is_some());
        // Total prorated blocks conserve the trace's blocks.
        let total: f64 = s.iter().map(|p| p.blocks).sum();
        assert!((total - 20.0).abs() < 1e-9);
    }

    #[test]
    fn blocks_conserved_under_any_window() {
        let t = Trace::from_records(vec![
            read(512 * 7, 0, 13),
            read(512 * 11, 5, 29),
            read(512 * 3, 40, 41),
        ]);
        for w_ms in [1u64, 3, 10, 100] {
            let s = windowed_series(&t, Dur::from_millis(w_ms));
            let total: f64 = s.iter().map(|p| p.blocks).sum();
            assert!((total - 21.0).abs() < 1e-6, "window {w_ms} ms: {total}");
        }
    }

    #[test]
    fn concurrent_requests_counted_once_in_io_time() {
        let t = Trace::from_records(vec![read(512, 0, 10), read(512, 0, 10)]);
        let s = windowed_series(&t, Dur::from_millis(10));
        assert_eq!(s[0].io_time, Dur::from_millis(10));
        assert_eq!(s[0].active_requests, 2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_window_rejected() {
        let t = Trace::from_records(vec![read(512, 0, 1)]);
        windowed_series(&t, Dur::ZERO);
    }
}
