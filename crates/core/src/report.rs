//! Human-readable summaries of traces and correlation sweeps.

use crate::correlation::CcOutcome;
use crate::metrics::{registry, MetricSelection};
use crate::record::Layer;
use crate::sink::{RecordSink, StreamingMetrics};
use crate::trace::Trace;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A registry-ordered set of metric values for one trace or record stream,
/// plus the raw counts behind them.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsSummary {
    /// `(name, value)` per selected metric, in registry order.
    pub metrics: Vec<(String, Option<f64>)>,
    /// Application records.
    pub app_ops: u64,
    /// Application bytes requested.
    pub app_bytes: u64,
    /// Application blocks requested (the `B` of equation (1)).
    pub app_blocks: u64,
    /// Bytes moved at the FS layer (0 when not instrumented).
    pub fs_bytes: u64,
    /// Overlapped application I/O time, seconds (the `T` of equation (1)).
    pub io_time_s: f64,
    /// Application execution time, seconds.
    pub exec_time_s: f64,
}

impl MetricsSummary {
    /// Compute every registered metric from a trace.
    pub fn from_trace(trace: &Trace) -> Self {
        MetricsSummary::from_trace_selected(trace, &MetricSelection::all())
    }

    /// Compute a selection of metrics from a trace.
    pub fn from_trace_selected(trace: &Trace, selection: &MetricSelection) -> Self {
        let mut acc = StreamingMetrics::for_selection(selection);
        acc.push_batch(trace.records());
        acc.on_execution_time(trace.execution_time());
        MetricsSummary::from_fold(&acc, selection)
    }

    /// Finish a selection of metrics from a streamed accumulator (which
    /// must have been built with at least the selection's
    /// [`FoldNeeds`](crate::metrics::FoldNeeds)).
    pub fn from_fold(acc: &StreamingMetrics, selection: &MetricSelection) -> Self {
        MetricsSummary {
            metrics: selection
                .metrics()
                .iter()
                .map(|m| (m.name().to_string(), m.finish(acc)))
                .collect(),
            app_ops: acc.op_count(Layer::Application),
            app_bytes: acc.bytes(Layer::Application),
            app_blocks: acc.blocks(Layer::Application),
            fs_bytes: acc.bytes(Layer::FileSystem),
            io_time_s: acc.overlapped_io_time(Layer::Application).as_secs_f64(),
            exec_time_s: acc.execution_time().as_secs_f64(),
        }
    }

    /// The value of a summarized metric by name (case-insensitive); `None`
    /// when not summarized or undefined on this stream.
    pub fn value(&self, name: &str) -> Option<f64> {
        self.metrics
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .and_then(|(_, v)| *v)
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x.abs() >= 1000.0 => format!("{x:.1}"),
        Some(x) if x.abs() >= 1.0 => format!("{x:.3}"),
        Some(x) => format!("{x:.6}"),
        None => "n/a".to_string(),
    }
}

impl fmt::Display for MetricsSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (name, value) in &self.metrics {
            let unit = registry().find(name).map(|m| m.unit()).unwrap_or("");
            writeln!(f, "  {:<11}: {} {}", name, fmt_opt(*value), unit)?;
        }
        writeln!(
            f,
            "  app ops/bytes/blocks: {} / {} / {}",
            self.app_ops, self.app_bytes, self.app_blocks
        )?;
        writeln!(f, "  fs bytes moved      : {}", self.fs_bytes)?;
        writeln!(
            f,
            "  I/O time {:.6} s   exec time {:.6} s",
            self.io_time_s, self.exec_time_s
        )
    }
}

/// Per-process view of a trace: each process's own ops, bytes, summed and
/// overlapped I/O time — the pre-gather state of the paper's Step 1, and
/// the first place to look when one rank is the straggler.
#[derive(Debug, Clone, Serialize)]
pub struct ProcessBreakdown {
    /// The process.
    pub pid: crate::record::ProcessId,
    /// Application ops issued.
    pub ops: u64,
    /// Bytes required.
    pub bytes: u64,
    /// Mean response time, seconds.
    pub arpt_s: f64,
    /// This process's own overlapped I/O time, seconds.
    pub io_time_s: f64,
    /// This process's own BPS over its own I/O time.
    pub bps: Option<f64>,
}

/// Break a trace down by process at the application layer, sorted by pid.
pub fn per_process(trace: &Trace) -> Vec<ProcessBreakdown> {
    trace
        .pids(Layer::Application)
        .into_iter()
        .map(|pid| {
            let records: Vec<_> = trace.process(Layer::Application, pid).collect();
            let ops = records.len() as u64;
            let bytes = records.iter().map(|r| r.bytes).sum();
            let summed: f64 = records.iter().map(|r| r.duration().as_secs_f64()).sum();
            let io_time = crate::interval::union_time(records.iter().map(|r| r.interval()));
            let blocks: u64 = records.iter().map(|r| r.blocks()).sum();
            let io_time_s = io_time.as_secs_f64();
            ProcessBreakdown {
                pid,
                ops,
                bytes,
                arpt_s: if ops > 0 { summed / ops as f64 } else { 0.0 },
                io_time_s,
                bps: (io_time_s > 0.0).then(|| blocks as f64 / io_time_s),
            }
        })
        .collect()
}

/// One row of a paper-style CC figure: a metric and its normalized CC value.
#[derive(Debug, Clone, Serialize)]
pub struct CcRow {
    /// Metric name ("IOPS", "BW", "ARPT", "BPS").
    pub metric: &'static str,
    /// The correlation outcome, or `None` when the metric was undefined on
    /// some sweep point.
    pub outcome: Option<CcOutcome>,
}

/// A full CC report: the four paper metrics scored against execution times
/// across a sweep of I/O access cases — one of these per bar-chart figure.
#[derive(Debug, Clone, Serialize)]
pub struct CcReport {
    /// Label of the sweep ("Fig. 4: various storage devices", ...).
    pub label: String,
    /// Per-metric rows in figure order.
    pub rows: Vec<CcRow>,
}

impl CcReport {
    /// Score the four paper metrics over per-case traces.
    ///
    /// `cases` holds the trace of each I/O access case in the sweep; the
    /// execution time of each case comes from [`Trace::execution_time`].
    pub fn from_cases(label: impl Into<String>, cases: &[Trace]) -> CcReport {
        CcReport::from_cases_selected(label, cases, &MetricSelection::paper())
    }

    /// Score a selection of registered metrics over per-case traces; rows
    /// come out in registry order.
    pub fn from_cases_selected(
        label: impl Into<String>,
        cases: &[Trace],
        selection: &MetricSelection,
    ) -> CcReport {
        let exec: Vec<f64> = cases
            .iter()
            .map(|t| t.execution_time().as_secs_f64())
            .collect();
        // Fold each case once; every selected metric finishes from the
        // same accumulator.
        let accs: Vec<StreamingMetrics> = cases
            .iter()
            .map(|t| {
                let mut acc = StreamingMetrics::for_selection(selection);
                acc.push_batch(t.records());
                acc.on_execution_time(t.execution_time());
                acc
            })
            .collect();
        let rows = selection
            .metrics()
            .iter()
            .map(|m| {
                let values: Option<Vec<f64>> = accs.iter().map(|a| m.finish(a)).collect();
                let outcome = values.and_then(|v| {
                    crate::correlation::normalized_cc(&v, &exec, m.expected_direction()).ok()
                });
                CcRow {
                    metric: m.name(),
                    outcome,
                }
            })
            .collect();
        CcReport {
            label: label.into(),
            rows,
        }
    }

    /// The normalized CC of a named metric (case-insensitive), if defined.
    pub fn normalized(&self, metric: &str) -> Option<f64> {
        self.rows
            .iter()
            .find(|r| r.metric.eq_ignore_ascii_case(metric))
            .and_then(|r| r.outcome.map(|o| o.normalized))
    }
}

impl fmt::Display for CcReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.label)?;
        writeln!(f, "  metric   norm.CC   raw.CC   direction")?;
        for row in &self.rows {
            match row.outcome {
                Some(o) => writeln!(
                    f,
                    "  {:<7} {:>8.3} {:>8.3}   {}",
                    row.metric,
                    o.normalized,
                    o.raw,
                    if o.direction_correct {
                        "correct"
                    } else {
                        "WRONG"
                    }
                )?,
                None => writeln!(f, "  {:<7}      n/a      n/a   -", row.metric)?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{FileId, IoRecord, ProcessId};
    use crate::time::{Dur, Nanos};

    /// A family of traces where larger requests finish the same total data
    /// faster: IOPS should come out direction-wrong, BPS direction-right.
    fn size_sweep() -> Vec<Trace> {
        let total_bytes: u64 = 1 << 24; // 16 MiB
        [4u64 << 10, 64 << 10, 1 << 20]
            .iter()
            .map(|&record_size| {
                let n = total_bytes / record_size;
                // Per-op cost: 100 us fixed + 10 ns/byte → larger records
                // are far more efficient.
                let per_op = Dur::from_micros(100) + Dur(10 * record_size);
                let mut tr = Trace::new();
                let mut now = Nanos::ZERO;
                for i in 0..n {
                    let end = now + per_op;
                    tr.push(IoRecord::app_read(
                        ProcessId(0),
                        FileId(0),
                        i * record_size,
                        record_size,
                        now,
                        end,
                    ));
                    now = end;
                }
                tr.set_execution_time(now - Nanos::ZERO);
                tr
            })
            .collect()
    }

    #[test]
    fn cc_report_flags_iops_in_size_sweep() {
        let report = CcReport::from_cases("size sweep", &size_sweep());
        // BPS correct and strong.
        assert!(report.normalized("BPS").unwrap() > 0.9);
        // IOPS misleads: higher IOPS (small records) went with *longer*
        // execution, so normalized CC is negative.
        assert!(report.normalized("IOPS").unwrap() < 0.0);
        let shown = format!("{report}");
        assert!(shown.contains("WRONG"));
        assert!(shown.contains("BPS"));
    }

    #[test]
    fn summary_populates_counts() {
        let tr = &size_sweep()[0];
        let s = MetricsSummary::from_trace(tr);
        assert_eq!(s.app_bytes, 1 << 24);
        assert!(s.value("BPS").unwrap() > 0.0);
        assert!(s.exec_time_s > 0.0);
        assert!((s.value("EffPar").unwrap() - 1.0).abs() < 1e-9);
        // Registry-ordered, one entry per registered metric, looked up
        // case-insensitively.
        let names: Vec<&str> = s.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, crate::metrics::registry().names());
        assert_eq!(s.value("bps"), s.value("BPS"));
        assert!(s.value("QPS").is_none());
        let shown = format!("{s}");
        assert!(shown.contains("BPS"));
        assert!(shown.contains("exec time"));
    }

    #[test]
    fn summary_respects_the_selection() {
        let tr = &size_sweep()[0];
        let sel = MetricSelection::parse(&["p99", "BPS"]).unwrap();
        let s = MetricsSummary::from_trace_selected(tr, &sel);
        let names: Vec<&str> = s.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["BPS", "P99"]);
        assert!(s.value("P99").unwrap() > 0.0);
        // Unselected metrics are absent, not None-valued.
        assert!(s.value("IOPS").is_none());
        // The selected values match the full-registry summary bit-for-bit.
        let full = MetricsSummary::from_trace(tr);
        assert_eq!(s.value("BPS"), full.value("BPS"));
        assert_eq!(s.value("P99"), full.value("P99"));
    }

    #[test]
    fn per_process_breakdown_splits_and_sums() {
        use crate::record::ProcessId;
        let mut tr = Trace::new();
        // pid 0: two sequential 1 MiB reads; pid 1: one concurrent read.
        tr.push(IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            0,
            1 << 20,
            Nanos::ZERO,
            Nanos::from_millis(10),
        ));
        tr.push(IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            1 << 20,
            1 << 20,
            Nanos::from_millis(10),
            Nanos::from_millis(20),
        ));
        tr.push(IoRecord::app_read(
            ProcessId(1),
            FileId(0),
            2 << 20,
            1 << 20,
            Nanos::ZERO,
            Nanos::from_millis(5),
        ));
        let rows = per_process(&tr);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].pid, ProcessId(0));
        assert_eq!(rows[0].ops, 2);
        assert_eq!(rows[0].bytes, 2 << 20);
        assert!((rows[0].io_time_s - 0.020).abs() < 1e-9);
        assert!((rows[0].bps.unwrap() - 4096.0 / 0.020).abs() < 1e-6);
        assert_eq!(rows[1].ops, 1);
        assert!((rows[1].arpt_s - 0.005).abs() < 1e-12);
        // Ops sum to the trace's ops.
        let total: u64 = rows.iter().map(|r| r.ops).sum();
        assert_eq!(total, tr.op_count(Layer::Application));
    }

    #[test]
    fn per_process_empty_trace() {
        assert!(per_process(&Trace::new()).is_empty());
    }

    #[test]
    fn summary_on_empty_trace_is_all_none() {
        let s = MetricsSummary::from_trace(&Trace::new());
        assert!(s.metrics.iter().all(|(_, v)| v.is_none()));
        assert_eq!(s.app_ops, 0);
    }

    #[test]
    fn cc_report_scores_extended_metrics() {
        let sel = MetricSelection::parse(&["BPS", "p99"]).unwrap();
        let report = CcReport::from_cases_selected("size sweep", &size_sweep(), &sel);
        let metrics: Vec<&str> = report.rows.iter().map(|r| r.metric).collect();
        assert_eq!(metrics, vec!["BPS", "P99"]);
        assert!(report.normalized("p99").is_some());
        assert_eq!(report.normalized("BPS"), {
            let paper = CcReport::from_cases("size sweep", &size_sweep());
            paper.normalized("BPS")
        });
    }
}
