//! Structure-of-arrays record batches.
//!
//! An [`IoRecord`] slice is the natural unit the producers emit, but its
//! array-of-structs layout makes the hot folds walk 56-byte strides to
//! touch one or two fields: summing bytes, counting blocks, or reducing
//! start/end bounds loads seven fields to use one. A [`RecordBatch`]
//! stores the same records as parallel columns — one `Vec` per field —
//! so a fold reads only the columns it needs, contiguously, in loops the
//! compiler can autovectorize.
//!
//! Batches are strictly a *layout* change: `push` preserves arrival
//! order, [`RecordBatch::get`] reassembles the exact record, and every
//! consumer ([`RecordSink::push_columns`](crate::sink::RecordSink::push_columns),
//! [`MetricFold::fold_columns`](crate::metrics::MetricFold::fold_columns))
//! is bit-for-bit identical to its row-wise counterpart because all the
//! stream accumulators are integer-valued and the interval union is a
//! canonical function of the set of inserted intervals.

use crate::block::blocks_for_bytes;
use crate::interval::{Interval, OnlineUnion};
use crate::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use crate::time::{Dur, Nanos};

/// A batch of I/O records in structure-of-arrays layout: eight parallel
/// columns, one entry per record, in arrival order.
///
/// ```
/// use bps_core::prelude::*;
/// let mut batch = RecordBatch::new();
/// batch.push(&IoRecord::app_read(
///     ProcessId(0), FileId(0), 0, 4096,
///     Nanos::ZERO, Nanos::from_micros(100),
/// ));
/// assert_eq!(batch.len(), 1);
/// assert_eq!(batch.sum_blocks(Layer::Application), 8);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecordBatch {
    pids: Vec<ProcessId>,
    ops: Vec<IoOp>,
    files: Vec<FileId>,
    offsets: Vec<u64>,
    bytes: Vec<u64>,
    starts: Vec<Nanos>,
    ends: Vec<Nanos>,
    layers: Vec<Layer>,
}

impl RecordBatch {
    /// An empty batch. `const` so thread-local pools can hold one.
    pub const fn new() -> Self {
        RecordBatch {
            pids: Vec::new(),
            ops: Vec::new(),
            files: Vec::new(),
            offsets: Vec::new(),
            bytes: Vec::new(),
            starts: Vec::new(),
            ends: Vec::new(),
            layers: Vec::new(),
        }
    }

    /// An empty batch with room for `n` records in every column.
    pub fn with_capacity(n: usize) -> Self {
        RecordBatch {
            pids: Vec::with_capacity(n),
            ops: Vec::with_capacity(n),
            files: Vec::with_capacity(n),
            offsets: Vec::with_capacity(n),
            bytes: Vec::with_capacity(n),
            starts: Vec::with_capacity(n),
            ends: Vec::with_capacity(n),
            layers: Vec::with_capacity(n),
        }
    }

    /// Columnarize a record slice, preserving order.
    pub fn from_records(records: &[IoRecord]) -> Self {
        let mut batch = RecordBatch::with_capacity(records.len());
        for r in records {
            batch.push(r);
        }
        batch
    }

    /// Append one record's fields to the columns.
    #[inline]
    pub fn push(&mut self, r: &IoRecord) {
        self.pids.push(r.pid);
        self.ops.push(r.op);
        self.files.push(r.file);
        self.offsets.push(r.offset);
        self.bytes.push(r.bytes);
        self.starts.push(r.start);
        self.ends.push(r.end);
        self.layers.push(r.layer);
    }

    /// Reassemble the record at row `i`.
    ///
    /// # Panics
    /// When `i >= len()`.
    #[inline]
    pub fn get(&self, i: usize) -> IoRecord {
        IoRecord {
            pid: self.pids[i],
            op: self.ops[i],
            file: self.files[i],
            offset: self.offsets[i],
            bytes: self.bytes[i],
            start: self.starts[i],
            end: self.ends[i],
            layer: self.layers[i],
        }
    }

    /// Reassembled records in arrival order.
    pub fn to_records(&self) -> Vec<IoRecord> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Number of records in the batch.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// True when the batch holds no records.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Drop all records, keeping the column allocations.
    pub fn clear(&mut self) {
        self.pids.clear();
        self.ops.clear();
        self.files.clear();
        self.offsets.clear();
        self.bytes.clear();
        self.starts.clear();
        self.ends.clear();
        self.layers.clear();
    }

    /// The byte-size column.
    pub fn bytes_col(&self) -> &[u64] {
        &self.bytes
    }

    /// The offset column.
    pub fn offsets_col(&self) -> &[u64] {
        &self.offsets
    }

    /// The issue-time column.
    pub fn starts_col(&self) -> &[Nanos] {
        &self.starts
    }

    /// The completion-time column.
    pub fn ends_col(&self) -> &[Nanos] {
        &self.ends
    }

    /// The layer column.
    pub fn layers_col(&self) -> &[Layer] {
        &self.layers
    }

    /// The op column.
    pub fn ops_col(&self) -> &[IoOp] {
        &self.ops
    }

    /// The process-id column.
    pub fn pids_col(&self) -> &[ProcessId] {
        &self.pids
    }

    /// The file-id column.
    pub fn files_col(&self) -> &[FileId] {
        &self.files
    }

    /// `Some(layer)` when every record in a non-empty batch was observed
    /// at the same layer — the gate for the branch-free columnar loops.
    pub fn uniform_layer(&self) -> Option<Layer> {
        let first = *self.layers.first()?;
        self.layers[1..]
            .iter()
            .all(|&l| l == first)
            .then_some(first)
    }

    /// Records observed at `layer`.
    pub fn count(&self, layer: Layer) -> u64 {
        if self.uniform_layer() == Some(layer) {
            return self.len() as u64;
        }
        self.layers.iter().filter(|&&l| l == layer).count() as u64
    }

    /// Sum of the byte sizes at `layer`.
    pub fn sum_bytes(&self, layer: Layer) -> u64 {
        if self.uniform_layer() == Some(layer) {
            return self.bytes.iter().sum();
        }
        self.rows(layer).map(|i| self.bytes[i]).sum()
    }

    /// Sum of the 512-byte block counts (each rounded up) at `layer`.
    pub fn sum_blocks(&self, layer: Layer) -> u64 {
        if self.uniform_layer() == Some(layer) {
            return self.bytes.iter().map(|&b| blocks_for_bytes(b)).sum();
        }
        self.rows(layer)
            .map(|i| blocks_for_bytes(self.bytes[i]))
            .sum()
    }

    /// Sum of the per-record response times at `layer` (what ARPT
    /// averages).
    pub fn sum_durations(&self, layer: Layer) -> Dur {
        if self.uniform_layer() == Some(layer) {
            let ns: u64 = self
                .starts
                .iter()
                .zip(&self.ends)
                .map(|(s, e)| e.0 - s.0)
                .sum();
            return Dur(ns);
        }
        Dur(self
            .rows(layer)
            .map(|i| self.ends[i].0 - self.starts[i].0)
            .sum())
    }

    /// Earliest start in the batch, any layer.
    pub fn min_start(&self) -> Option<Nanos> {
        self.starts.iter().copied().min()
    }

    /// Latest end in the batch, any layer.
    pub fn max_end(&self) -> Option<Nanos> {
        self.ends.iter().copied().max()
    }

    /// Insert the in-flight intervals at `layer` into `union`, in row
    /// order, through a register-resident running hull: consecutive
    /// overlapping-or-touching intervals fuse before the union is
    /// touched, exactly like the row-wise batch accumulator. The union's
    /// final state is the canonical one for the interval set regardless
    /// of fusing, so totals match per-record insertion bit-for-bit.
    pub fn union_into(&self, layer: Layer, union: &mut OnlineUnion) {
        let uniform = self.uniform_layer() == Some(layer);
        let mut run: Option<Interval> = None;
        for i in 0..self.len() {
            if !uniform && self.layers[i] != layer {
                continue;
            }
            let iv = Interval {
                start: self.starts[i],
                end: self.ends[i],
            };
            match &mut run {
                Some(r) if iv.start <= r.end && iv.end >= r.start => {
                    r.start = r.start.min(iv.start);
                    r.end = r.end.max(iv.end);
                }
                Some(r) => {
                    union.insert(*r);
                    *r = iv;
                }
                None => run = Some(iv),
            }
        }
        if let Some(r) = run {
            union.insert(r);
        }
    }

    /// Overlapped I/O time at `layer`: the measure of the union of the
    /// layer's in-flight intervals (the `T` of the BPS equation at
    /// `Layer::Application`).
    pub fn union_time(&self, layer: Layer) -> Dur {
        let mut union = OnlineUnion::new();
        self.union_into(layer, &mut union);
        union.total()
    }

    fn rows(&self, layer: Layer) -> impl Iterator<Item = usize> + '_ {
        self.layers
            .iter()
            .enumerate()
            .filter(move |(_, &l)| l == layer)
            .map(|(i, _)| i)
    }
}

impl FromIterator<IoRecord> for RecordBatch {
    fn from_iter<I: IntoIterator<Item = IoRecord>>(iter: I) -> Self {
        let mut batch = RecordBatch::new();
        for r in iter {
            batch.push(&r);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::union_time;

    fn rec(layer: Layer, bytes: u64, s_us: u64, e_us: u64) -> IoRecord {
        IoRecord::new(
            ProcessId(0),
            IoOp::Read,
            FileId(0),
            0,
            bytes,
            Nanos::from_micros(s_us),
            Nanos::from_micros(e_us),
            layer,
        )
    }

    fn sample() -> Vec<IoRecord> {
        vec![
            rec(Layer::Application, 4096, 0, 40),
            rec(Layer::FileSystem, 8192, 5, 35),
            rec(Layer::Application, 513, 20, 90),
            rec(Layer::Device, 512, 25, 60),
            rec(Layer::Application, 1 << 20, 200, 900),
        ]
    }

    #[test]
    fn roundtrips_records_in_order() {
        let records = sample();
        let batch = RecordBatch::from_records(&records);
        assert_eq!(batch.len(), records.len());
        assert_eq!(batch.to_records(), records);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(&batch.get(i), r);
        }
    }

    #[test]
    fn columnar_reductions_match_row_wise() {
        let records = sample();
        let batch = RecordBatch::from_records(&records);
        for layer in [
            Layer::Application,
            Layer::FileSystem,
            Layer::Device,
            Layer::Network,
        ] {
            let rows: Vec<&IoRecord> = records.iter().filter(|r| r.layer == layer).collect();
            assert_eq!(batch.count(layer), rows.len() as u64);
            assert_eq!(
                batch.sum_bytes(layer),
                rows.iter().map(|r| r.bytes).sum::<u64>()
            );
            assert_eq!(
                batch.sum_blocks(layer),
                rows.iter().map(|r| r.blocks()).sum::<u64>()
            );
            assert_eq!(
                batch.sum_durations(layer),
                rows.iter().fold(Dur::ZERO, |acc, r| acc + r.duration())
            );
            assert_eq!(
                batch.union_time(layer),
                union_time(rows.iter().map(|r| r.interval()))
            );
        }
    }

    #[test]
    fn uniform_layer_detects_single_layer_batches() {
        assert_eq!(RecordBatch::new().uniform_layer(), None);
        let batch = RecordBatch::from_records(&sample());
        assert_eq!(batch.uniform_layer(), None);
        let app: RecordBatch = sample()
            .into_iter()
            .filter(|r| r.layer == Layer::Application)
            .collect();
        assert_eq!(app.uniform_layer(), Some(Layer::Application));
        assert_eq!(app.count(Layer::Application), 3);
        assert_eq!(app.count(Layer::FileSystem), 0);
    }

    #[test]
    fn clear_keeps_capacity_and_empties_every_column() {
        let mut batch = RecordBatch::from_records(&sample());
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.min_start(), None);
        assert_eq!(batch.max_end(), None);
        batch.push(&rec(Layer::Application, 512, 3, 9));
        assert_eq!(batch.len(), 1);
        assert_eq!(batch.min_start(), Some(Nanos::from_micros(3)));
        assert_eq!(batch.max_end(), Some(Nanos::from_micros(9)));
    }

    #[test]
    fn union_into_accumulates_across_batches() {
        let records = sample();
        let (a, b) = records.split_at(2);
        let mut split = OnlineUnion::new();
        RecordBatch::from_records(a).union_into(Layer::Application, &mut split);
        RecordBatch::from_records(b).union_into(Layer::Application, &mut split);
        let whole = RecordBatch::from_records(&records).union_time(Layer::Application);
        assert_eq!(split.total(), whole);
    }
}
