//! Simulation time: nanosecond instants and durations.
//!
//! All timing in the workspace is expressed in integer nanoseconds so that
//! the discrete-event simulator is exactly deterministic and traces can be
//! serialized without floating-point round-trip loss. Conversions to `f64`
//! seconds happen only at metric-computation and reporting boundaries.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An instant on the (virtual or wall) clock, in nanoseconds since an
/// arbitrary epoch (simulation start, or trace-session start for real runs).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Nanos(pub u64);

/// A span of time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Dur(pub u64);

impl Nanos {
    /// The epoch (time zero).
    pub const ZERO: Nanos = Nanos(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: Nanos = Nanos(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Nanos(s * NANOS_PER_SEC)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Nanos(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Nanos(us * 1_000)
    }
    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    pub fn since(self, earlier: Nanos) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
    /// The earlier of two instants.
    pub fn min(self, other: Nanos) -> Nanos {
        Nanos(self.0.min(other.0))
    }
    /// The later of two instants.
    pub fn max(self, other: Nanos) -> Nanos {
        Nanos(self.0.max(other.0))
    }
}

impl Dur {
    /// Zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Dur(s * NANOS_PER_SEC)
    }
    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Dur(ms * 1_000_000)
    }
    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Dur(us * 1_000)
    }
    /// Construct from fractional seconds (rounds to nearest nanosecond;
    /// negative inputs clamp to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return Dur::ZERO;
        }
        Dur((s * NANOS_PER_SEC as f64).round() as u64)
    }
    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }
    /// True if the duration is zero.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Dur) -> Dur {
        Dur(self.0.saturating_sub(other.0))
    }
}

impl Add<Dur> for Nanos {
    type Output = Nanos;
    fn add(self, rhs: Dur) -> Nanos {
        Nanos(self.0 + rhs.0)
    }
}
impl AddAssign<Dur> for Nanos {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}
impl Sub<Dur> for Nanos {
    type Output = Nanos;
    fn sub(self, rhs: Dur) -> Nanos {
        Nanos(self.0 - rhs.0)
    }
}
impl Sub<Nanos> for Nanos {
    type Output = Dur;
    fn sub(self, rhs: Nanos) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl Add for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}
impl AddAssign for Dur {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}
impl Sub for Dur {
    type Output = Dur;
    fn sub(self, rhs: Dur) -> Dur {
        Dur(self.0 - rhs.0)
    }
}
impl SubAssign for Dur {
    fn sub_assign(&mut self, rhs: Dur) {
        self.0 -= rhs.0;
    }
}
impl Mul<u64> for Dur {
    type Output = Dur;
    fn mul(self, rhs: u64) -> Dur {
        Dur(self.0 * rhs)
    }
}
impl Div<u64> for Dur {
    type Output = Dur;
    fn div(self, rhs: u64) -> Dur {
        Dur(self.0 / rhs)
    }
}

impl fmt::Display for Nanos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}
impl fmt::Display for Dur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}us", self.0 as f64 / 1e3)
        } else if self.0 < NANOS_PER_SEC {
            write!(f, "{:.2}ms", self.0 as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(Nanos::from_secs(2), Nanos(2 * NANOS_PER_SEC));
        assert_eq!(Nanos::from_millis(3), Nanos(3_000_000));
        assert_eq!(Nanos::from_micros(5), Nanos(5_000));
        assert_eq!(Dur::from_secs(1), Dur(NANOS_PER_SEC));
    }

    #[test]
    fn arithmetic_roundtrips() {
        let t = Nanos::from_millis(10);
        let d = Dur::from_millis(4);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
        let mut u = t;
        u += d;
        assert_eq!(u, Nanos::from_millis(14));
    }

    #[test]
    fn since_saturates() {
        let a = Nanos::from_millis(1);
        let b = Nanos::from_millis(2);
        assert_eq!(b.since(a), Dur::from_millis(1));
        assert_eq!(a.since(b), Dur::ZERO);
    }

    #[test]
    fn secs_f64_conversion() {
        assert!((Dur::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(Dur::from_secs_f64(1.5), Dur::from_millis(1500));
        assert_eq!(Dur::from_secs_f64(-1.0), Dur::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", Dur(500)), "500ns");
        assert_eq!(format!("{}", Dur::from_micros(12)), "12.00us");
        assert_eq!(format!("{}", Dur::from_millis(12)), "12.00ms");
        assert_eq!(format!("{}", Dur::from_secs(2)), "2.000s");
    }

    #[test]
    fn min_max() {
        let a = Nanos(3);
        let b = Nanos(7);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
    }
}
