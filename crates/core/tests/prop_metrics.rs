//! Property tests for the metrics and correlation machinery.

use bps_core::correlation::{kendall_tau, normalized_cc, pearson, spearman};
use bps_core::metrics::{Arpt, Bandwidth, Bps, Direction, Iops, Metric};
use bps_core::record::{FileId, IoRecord, ProcessId};
use bps_core::time::Nanos;
use bps_core::trace::Trace;
use proptest::prelude::*;

/// A random application-layer trace: per process, a chain of reads with
/// random sizes, durations, and idle gaps.
fn app_trace() -> impl Strategy<Value = Trace> {
    let per_process =
        proptest::collection::vec((1u64..1_000_000, 1u64..50_000, 0u64..50_000), 1..40);
    proptest::collection::vec(per_process, 1..5).prop_map(|procs| {
        let mut trace = Trace::new();
        for (pid, ops) in procs.into_iter().enumerate() {
            let mut now = 0u64;
            let mut offset = 0u64;
            for (bytes, dur_us, gap_us) in ops {
                now += gap_us * 1_000;
                let start = Nanos(now);
                now += dur_us * 1_000;
                trace.push(IoRecord::app_read(
                    ProcessId(pid as u32),
                    FileId(0),
                    offset,
                    bytes,
                    start,
                    Nanos(now),
                ));
                offset += bytes;
            }
        }
        trace
    })
}

fn series(len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, len..=len)
}

proptest! {
    /// BPS, IOPS are finite and positive on any non-degenerate trace, and
    /// BPS × 512 bytes/block never exceeds the bandwidth implied by summing
    /// durations (BPS uses union time ≤ ... actually union ≤ sum, so BPS ≥
    /// blocks/sum). Check the sandwich.
    #[test]
    fn bps_sandwiched_by_times(trace in app_trace()) {
        use bps_core::record::Layer;
        let t_union = trace.overlapped_io_time(Layer::Application).as_secs_f64();
        let t_sum = trace.summed_io_time(Layer::Application).as_secs_f64();
        prop_assume!(t_union > 0.0);
        let blocks = trace.app_blocks() as f64;
        let bps = Bps.compute(&trace).unwrap();
        prop_assert!(bps >= blocks / t_sum - 1e-9);
        prop_assert!(bps <= blocks / t_union + 1e-9);
        prop_assert!((bps - blocks / t_union).abs() < 1e-6 * bps.max(1.0));
    }

    /// Without file-system-layer records, bandwidth is exactly BPS scaled
    /// by the block size — they only diverge when optimizations move extra
    /// data.
    #[test]
    fn bw_equals_bps_without_fs_layer(trace in app_trace()) {
        prop_assume!(Bps.compute(&trace).is_some());
        let bps = Bps.compute(&trace).unwrap();
        let bw = Bandwidth.compute(&trace).unwrap();
        use bps_core::record::Layer;
        let bytes = trace.bytes(Layer::Application) as f64;
        let blocks_bytes = trace.app_blocks() as f64 * 512.0;
        // BW uses raw bytes, BPS block-rounds; they agree within rounding.
        let ratio = (bw * 1e6) / (bps * 512.0);
        let rounding = bytes / blocks_bytes;
        prop_assert!((ratio - rounding).abs() < 1e-6, "{ratio} vs {rounding}");
    }

    /// Splitting one request into two back-to-back halves preserves BPS
    /// (block rounding aside) but doubles the op count in IOPS.
    #[test]
    fn split_preserves_bps_not_iops(bytes in 1024u64..1_000_000, dur_us in 2u64..10_000) {
        // Whole-block sizes so block rounding does not interfere.
        let bytes = bytes - bytes % 1024;
        let merged = Trace::from_records(vec![IoRecord::app_read(
            ProcessId(0), FileId(0), 0, bytes, Nanos(0), Nanos(dur_us * 1_000),
        )]);
        let half = dur_us / 2;
        let split = Trace::from_records(vec![
            IoRecord::app_read(ProcessId(0), FileId(0), 0, bytes / 2, Nanos(0), Nanos(half * 1_000)),
            IoRecord::app_read(
                ProcessId(0), FileId(0), bytes / 2, bytes / 2,
                Nanos(half * 1_000), Nanos(2 * half * 1_000),
            ),
        ]);
        let bps_merged = Bps.compute(&merged).unwrap();
        let bps_split = Bps.compute(&split).unwrap();
        // Durations were rounded to half; compare with tolerance.
        let tol = 2.0 / dur_us as f64 + 1e-9;
        prop_assert!((bps_merged / bps_split - 1.0).abs() <= 2.0 * tol,
            "{bps_merged} vs {bps_split}");
        let iops_merged = Iops.compute(&merged).unwrap();
        let iops_split = Iops.compute(&split).unwrap();
        prop_assert!(iops_split > 1.5 * iops_merged);
    }

    /// ARPT is the mean of durations: between min and max.
    #[test]
    fn arpt_between_min_and_max(trace in app_trace()) {
        prop_assume!(!trace.is_empty());
        let arpt = Arpt.compute(&trace).unwrap();
        let durs: Vec<f64> = trace.records().iter().map(|r| r.duration().as_secs_f64()).collect();
        let min = durs.iter().cloned().fold(f64::MAX, f64::min);
        let max = durs.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(arpt >= min - 1e-12 && arpt <= max + 1e-12);
    }

    /// Pearson is bounded, symmetric, and scale/shift-invariant.
    #[test]
    fn pearson_properties(x in series(12), y in series(12), a in 0.1f64..100.0, b in -100.0f64..100.0) {
        let p = pearson(&x, &y);
        prop_assume!(p.is_ok());
        let p = p.unwrap();
        prop_assert!((-1.0..=1.0).contains(&p));
        prop_assert!((p - pearson(&y, &x).unwrap()).abs() < 1e-9);
        // Affine transform with positive slope preserves CC.
        let x2: Vec<f64> = x.iter().map(|v| a * v + b).collect();
        if let Ok(p2) = pearson(&x2, &y) {
            prop_assert!((p - p2).abs() < 1e-6, "{p} vs {p2}");
        }
        // Negative slope flips the sign.
        let x3: Vec<f64> = x.iter().map(|v| -a * v + b).collect();
        if let Ok(p3) = pearson(&x3, &y) {
            prop_assert!((p + p3).abs() < 1e-6);
        }
    }

    /// Spearman and Kendall share Pearson's sign conventions on monotone
    /// data and are bounded.
    #[test]
    fn rank_correlations_bounded(x in series(10), y in series(10)) {
        if let Ok(s) = spearman(&x, &y) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&s));
        }
        if let Ok(k) = kendall_tau(&x, &y) {
            prop_assert!((-1.0..=1.0).contains(&k));
        }
    }

    /// Normalization: |normalized| == |raw|, and the sign encodes direction
    /// agreement.
    #[test]
    fn normalization_preserves_magnitude(x in series(8), y in series(8)) {
        for dir in [Direction::Negative, Direction::Positive] {
            if let Ok(out) = normalized_cc(&x, &y, dir) {
                prop_assert!((out.normalized.abs() - out.raw.abs()).abs() < 1e-12);
                prop_assert_eq!(out.direction_correct, out.normalized >= 0.0);
            }
        }
    }
}
