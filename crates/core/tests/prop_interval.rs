//! Property tests for the overlapped-time algebra — the heart of BPS.

use bps_core::interval::{paper_union_time, union_time, ConcurrencyProfile, Interval, IntervalSet};
use bps_core::time::{Dur, Nanos};
use proptest::prelude::*;

/// Arbitrary interval with bounded coordinates so sums never overflow.
fn interval() -> impl Strategy<Value = Interval> {
    (0u64..1_000_000, 0u64..100_000)
        .prop_map(|(start, len)| Interval::new(Nanos(start), Nanos(start + len)))
}

fn intervals(max: usize) -> impl Strategy<Value = Vec<Interval>> {
    proptest::collection::vec(interval(), 0..max)
}

proptest! {
    /// The union measure never exceeds the sum of the parts and never
    /// undercuts the longest part.
    #[test]
    fn union_bounded(ivs in intervals(64)) {
        let t = union_time(ivs.iter().copied());
        let sum = ivs.iter().fold(Dur::ZERO, |acc, iv| acc + iv.duration());
        let max = ivs.iter().map(|iv| iv.duration()).max().unwrap_or(Dur::ZERO);
        prop_assert!(t <= sum);
        prop_assert!(t >= max);
    }

    /// Input order is irrelevant.
    #[test]
    fn union_order_invariant(mut ivs in intervals(32), seed in 0u64..1000) {
        let a = union_time(ivs.iter().copied());
        // Cheap deterministic shuffle.
        let n = ivs.len().max(1);
        for i in 0..ivs.len() {
            let j = ((seed as usize).wrapping_mul(31).wrapping_add(i * 17)) % n;
            ivs.swap(i, j);
        }
        let b = union_time(ivs.iter().copied());
        prop_assert_eq!(a, b);
    }

    /// The paper's Figure 3 algorithm agrees with the independent sweep on
    /// every input.
    #[test]
    fn paper_algorithm_equivalent(ivs in intervals(64)) {
        prop_assert_eq!(paper_union_time(&ivs), union_time(ivs.iter().copied()));
    }

    /// Union equals the sum of parts iff no two intervals overlap (merged
    /// set has as many spans as non-degenerate inputs).
    #[test]
    fn union_equals_sum_iff_disjoint(ivs in intervals(24)) {
        let t = union_time(ivs.iter().copied());
        let sum = ivs.iter().fold(Dur::ZERO, |acc, iv| acc + iv.duration());
        let set = IntervalSet::from_unsorted(ivs.iter().copied());
        if t == sum {
            // Any strict overlap would have shrunk the union. Touching
            // intervals merge spans but do not shrink the measure.
            prop_assert!(set.total() == sum);
        } else {
            prop_assert!(t < sum);
        }
    }

    /// Incremental insertion builds the same set as batch construction.
    #[test]
    fn incremental_matches_batch(ivs in intervals(32)) {
        let batch = IntervalSet::from_unsorted(ivs.iter().copied());
        let mut inc = IntervalSet::new();
        for iv in &ivs {
            inc.insert(*iv);
        }
        prop_assert_eq!(batch, inc);
    }

    /// Inserting an interval already covered by the set changes nothing.
    #[test]
    fn insert_idempotent_on_covered(ivs in intervals(16)) {
        let mut set = IntervalSet::from_unsorted(ivs.iter().copied());
        let before = set.clone();
        for iv in &ivs {
            set.insert(*iv);
        }
        prop_assert_eq!(before, set);
    }

    /// Busy + idle = span, and gaps are inside the span.
    #[test]
    fn busy_plus_idle_is_span(ivs in intervals(32)) {
        let set = IntervalSet::from_unsorted(ivs.iter().copied());
        if let Some(span) = set.span() {
            prop_assert_eq!(set.total() + set.idle_time(), span.duration());
            for gap in set.gaps() {
                prop_assert!(gap.start >= span.start && gap.end <= span.end);
                prop_assert!(gap.duration() > Dur::ZERO);
            }
        }
    }

    /// The concurrency profile's busy depth is consistent with the union:
    /// mean depth × busy time = summed durations.
    #[test]
    fn depth_times_busy_equals_sum(ivs in intervals(32)) {
        let profile = ConcurrencyProfile::from_intervals(ivs.iter().copied());
        let busy = union_time(ivs.iter().copied()).as_secs_f64();
        let sum: f64 = ivs.iter().map(|iv| iv.duration().as_secs_f64()).sum();
        if busy > 0.0 {
            let reconstructed = profile.mean_busy_depth * busy;
            prop_assert!((reconstructed - sum).abs() < 1e-6 * sum.max(1.0),
                "{reconstructed} vs {sum}");
        }
        // Max depth never exceeds the number of intervals.
        prop_assert!(profile.max_depth as usize <= ivs.len());
    }

    /// Merging two sets of intervals unions their measures sub-additively.
    #[test]
    fn union_subadditive(a in intervals(16), b in intervals(16)) {
        let ta = union_time(a.iter().copied());
        let tb = union_time(b.iter().copied());
        let tab = union_time(a.iter().chain(b.iter()).copied());
        prop_assert!(tab <= ta + tb);
        prop_assert!(tab >= ta.max(tb));
    }
}
