//! Property tests: the streaming observer path is *exactly* the
//! materialize-then-compute path — bit-for-bit, not approximately.

use bps_core::batch::RecordBatch;
use bps_core::interval::{union_time, Interval, OnlineUnion};
use bps_core::metrics::{registry, Arpt, Bandwidth, Bps, FoldNeeds, Iops, Metric};
use bps_core::record::{FileId, IoOp, IoRecord, Layer, ProcessId};
use bps_core::sink::{RecordSink, StreamingMetrics};
use bps_core::time::{Dur, Nanos};
use bps_core::trace::Trace;
use proptest::prelude::*;

/// Random records across all three layers, arbitrary overlap and order.
fn records() -> impl Strategy<Value = Vec<IoRecord>> {
    let one = (
        0u32..4,
        0u64..1_000_000,
        0u64..200_000,
        1u64..1_000_000,
        0usize..6,
    )
        .prop_map(|(pid, start, len, bytes, shape)| {
            let layer = match shape % 3 {
                0 => Layer::Application,
                1 => Layer::FileSystem,
                _ => Layer::Device,
            };
            let op = if shape < 3 { IoOp::Read } else { IoOp::Write };
            IoRecord::new(
                ProcessId(pid),
                op,
                FileId(pid),
                0,
                bytes,
                Nanos(start),
                Nanos(start + len),
                layer,
            )
        });
    proptest::collection::vec(one, 0..60)
}

fn bits(v: Option<f64>) -> Option<u64> {
    v.map(f64::to_bits)
}

proptest! {
    /// All four metrics and the execution time agree bit-for-bit between
    /// the streaming accumulators and the materialized trace, on streams
    /// mixing layers, concurrency, and out-of-order completions.
    #[test]
    fn streaming_equals_materialized(recs in records()) {
        let mut trace = Trace::new();
        let mut stream = StreamingMetrics::new();
        for r in &recs {
            trace.on_record(r);
            stream.on_record(r);
        }
        prop_assert_eq!(bits(Bps.compute(&trace)), bits(stream.bps()));
        prop_assert_eq!(bits(Iops.compute(&trace)), bits(stream.iops()));
        prop_assert_eq!(bits(Bandwidth.compute(&trace)), bits(stream.bandwidth()));
        prop_assert_eq!(bits(Arpt.compute(&trace)), bits(stream.arpt()));
        prop_assert_eq!(trace.execution_time(), stream.execution_time());
        prop_assert_eq!(trace.op_count(Layer::Application), stream.op_count(Layer::Application));
        prop_assert_eq!(trace.op_count(Layer::FileSystem), stream.op_count(Layer::FileSystem));
        prop_assert_eq!(trace.op_count(Layer::Device), stream.op_count(Layer::Device));
        prop_assert_eq!(trace.app_blocks(), stream.app_blocks());
        prop_assert_eq!(
            trace.overlapped_io_time(Layer::Application),
            stream.overlapped_io_time(Layer::Application)
        );
    }

    /// An explicitly observed execution time takes precedence identically
    /// on both paths.
    #[test]
    fn streaming_execution_time_override(recs in records(), exec_ns in 1u64..10_000_000) {
        let mut trace = Trace::new();
        let mut stream = StreamingMetrics::new();
        for r in &recs {
            trace.on_record(r);
            stream.on_record(r);
        }
        trace.on_execution_time(Dur(exec_ns));
        stream.on_execution_time(Dur(exec_ns));
        prop_assert_eq!(trace.execution_time(), stream.execution_time());
        prop_assert_eq!(stream.execution_time(), Dur(exec_ns));
    }

    /// The online union equals the sort-and-sweep union after every single
    /// insert, under arbitrary (not just nondecreasing) arrival order.
    #[test]
    fn online_union_equals_sweep(ivs in proptest::collection::vec(
        (0u64..1_000_000, 0u64..100_000), 0..64
    )) {
        let ivs: Vec<Interval> = ivs
            .into_iter()
            .map(|(s, l)| Interval::new(Nanos(s), Nanos(s + l)))
            .collect();
        let mut online = OnlineUnion::new();
        for (i, iv) in ivs.iter().enumerate() {
            online.insert(*iv);
            let sweep = union_time(ivs[..=i].iter().copied());
            prop_assert_eq!(online.total(), sweep, "after insert {}", i);
        }
        // Spans come out disjoint and ascending.
        let spans = online.spans();
        prop_assert!(spans.windows(2).all(|w| w[0].end < w[1].start));
    }

    /// Nondecreasing arrivals — the streaming fast path — never touch the
    /// splice fallback's invariants either: totals still match the sweep.
    #[test]
    fn online_union_sorted_arrivals(ivs in proptest::collection::vec(
        (0u64..1_000_000, 0u64..100_000), 1..64
    )) {
        let mut ivs: Vec<Interval> = ivs
            .into_iter()
            .map(|(s, l)| Interval::new(Nanos(s), Nanos(s + l)))
            .collect();
        ivs.sort_unstable_by_key(|iv| (iv.start, iv.end));
        let mut online = OnlineUnion::new();
        for iv in &ivs {
            online.insert(*iv);
        }
        prop_assert_eq!(online.total(), union_time(ivs.iter().copied()));
    }

    /// Batched ingestion is bit-identical to per-record ingestion on the
    /// same stream, for every way of cutting the stream into batches —
    /// mixed layers, overlap, and out-of-order completions included.
    #[test]
    fn push_batch_equals_per_record(
        recs in records(),
        cuts in proptest::collection::vec(1usize..8, 0..24),
    ) {
        let mut seq = StreamingMetrics::new();
        for r in &recs {
            seq.on_record(r);
        }
        let mut bat = StreamingMetrics::new();
        bat.push_batch(&[]); // empty batches are no-ops
        let mut rest = &recs[..];
        let mut cuts = cuts.iter();
        while !rest.is_empty() {
            let k = cuts.next().copied().unwrap_or(rest.len()).min(rest.len());
            let (chunk, tail) = rest.split_at(k);
            bat.push_batch(chunk);
            rest = tail;
        }
        prop_assert_eq!(bits(seq.bps()), bits(bat.bps()));
        prop_assert_eq!(bits(seq.iops()), bits(bat.iops()));
        prop_assert_eq!(bits(seq.bandwidth()), bits(bat.bandwidth()));
        prop_assert_eq!(bits(seq.arpt()), bits(bat.arpt()));
        prop_assert_eq!(seq.execution_time(), bat.execution_time());
        prop_assert_eq!(seq.len(), bat.len());
        for layer in [
            Layer::Application,
            Layer::FileSystem,
            Layer::Device,
            Layer::Network,
            Layer::Retry,
        ] {
            prop_assert_eq!(seq.op_count(layer), bat.op_count(layer));
        }
        prop_assert_eq!(seq.app_blocks(), bat.app_blocks());
        prop_assert_eq!(
            seq.overlapped_io_time(Layer::Application),
            bat.overlapped_io_time(Layer::Application)
        );
        prop_assert_eq!(
            seq.overlapped_io_time(Layer::FileSystem),
            bat.overlapped_io_time(Layer::FileSystem)
        );
    }

    /// Every metric in the registry — paper four and extended — agrees
    /// bit-for-bit across all three ingestion paths: the default
    /// [`Metric::compute`] fold over a materialized trace, per-record
    /// streaming, and batched streaming under every way of cutting the
    /// stream (the accumulator retains [`FoldNeeds::ALL`], so even the
    /// percentile and queue-depth folds are live).
    #[test]
    fn every_registry_metric_streams_batches_and_computes_identically(
        recs in records(),
        cuts in proptest::collection::vec(1usize..8, 0..24),
    ) {
        let mut trace = Trace::new();
        let mut seq = StreamingMetrics::with_needs(FoldNeeds::ALL);
        for r in &recs {
            trace.on_record(r);
            seq.on_record(r);
        }
        let mut bat = StreamingMetrics::with_needs(FoldNeeds::ALL);
        let mut rest = &recs[..];
        let mut cuts = cuts.iter();
        while !rest.is_empty() {
            let k = cuts.next().copied().unwrap_or(rest.len()).min(rest.len());
            let (chunk, tail) = rest.split_at(k);
            bat.push_batch(chunk);
            rest = tail;
        }
        for m in registry().all() {
            prop_assert_eq!(
                bits(m.compute(&trace)),
                bits(m.finish(&seq)),
                "{}: compute vs per-record stream", m.name()
            );
            prop_assert_eq!(
                bits(m.finish(&seq)),
                bits(m.finish(&bat)),
                "{}: per-record vs push_batch", m.name()
            );
        }
    }

    /// Columnar ingestion ([`RecordSink::push_columns`]) is bit-identical
    /// to per-record ingestion on the same stream, for every way of
    /// cutting the stream into batches — including single-layer batches
    /// (the vectorized fast path) and mixed-layer ones (the row-wise
    /// fallback) — and the `Trace` sink preserves exact record order.
    #[test]
    fn push_columns_equals_per_record(
        recs in records(),
        cuts in proptest::collection::vec(1usize..8, 0..24),
    ) {
        let mut seq = StreamingMetrics::with_needs(FoldNeeds::ALL);
        let mut trace_seq = Trace::new();
        for r in &recs {
            seq.on_record(r);
            trace_seq.on_record(r);
        }
        let mut col = StreamingMetrics::with_needs(FoldNeeds::ALL);
        let mut plain = StreamingMetrics::new();
        let mut trace_col = Trace::new();
        col.push_columns(&RecordBatch::new()); // empty batches are no-ops
        let mut rest = &recs[..];
        let mut cuts = cuts.iter();
        while !rest.is_empty() {
            let k = cuts.next().copied().unwrap_or(rest.len()).min(rest.len());
            let (chunk, tail) = rest.split_at(k);
            let batch = RecordBatch::from_records(chunk);
            col.push_columns(&batch);
            plain.push_columns(&batch);
            trace_col.push_columns(&batch);
            rest = tail;
        }
        for m in registry().all() {
            prop_assert_eq!(
                bits(m.finish(&seq)),
                bits(m.finish(&col)),
                "{}: per-record vs push_columns", m.name()
            );
        }
        prop_assert_eq!(bits(plain.bps()), bits(seq.bps()));
        prop_assert_eq!(bits(plain.bandwidth()), bits(seq.bandwidth()));
        prop_assert_eq!(seq.execution_time(), col.execution_time());
        prop_assert_eq!(seq.len(), col.len());
        for layer in [
            Layer::Application,
            Layer::FileSystem,
            Layer::Device,
            Layer::Network,
            Layer::Retry,
        ] {
            prop_assert_eq!(seq.op_count(layer), col.op_count(layer));
            prop_assert_eq!(
                seq.overlapped_io_time(layer),
                col.overlapped_io_time(layer)
            );
        }
        prop_assert_eq!(trace_seq.records(), trace_col.records());
    }

    /// Single-layer batches take the branch-free columnar fast path;
    /// its sums and union must still be bit-identical to per-record
    /// ingestion of the same rows.
    #[test]
    fn push_columns_uniform_layer_fast_path(recs in records()) {
        for layer in [Layer::Application, Layer::FileSystem, Layer::Device] {
            let rows: Vec<IoRecord> =
                recs.iter().filter(|r| r.layer == layer).copied().collect();
            let mut seq = StreamingMetrics::new();
            for r in &rows {
                seq.on_record(r);
            }
            let batch = RecordBatch::from_records(&rows);
            prop_assert!(batch.is_empty() || batch.uniform_layer() == Some(layer));
            let mut col = StreamingMetrics::new();
            col.push_columns(&batch);
            prop_assert_eq!(seq.op_count(layer), col.op_count(layer));
            prop_assert_eq!(seq.bytes(layer), col.bytes(layer));
            prop_assert_eq!(seq.blocks(layer), col.blocks(layer));
            prop_assert_eq!(seq.summed_io_time(layer), col.summed_io_time(layer));
            prop_assert_eq!(
                seq.overlapped_io_time(layer),
                col.overlapped_io_time(layer)
            );
            prop_assert_eq!(seq.execution_time(), col.execution_time());
        }
    }

    /// Every registry metric's [`MetricFold::fold_columns`] — the paper
    /// four's vectorized overrides and the default for the rest — agrees
    /// bit-for-bit with the per-record streaming path over the whole
    /// stream as one batch.
    #[test]
    fn fold_columns_equals_per_record(recs in records()) {
        let mut seq = StreamingMetrics::with_needs(FoldNeeds::ALL);
        for r in &recs {
            seq.on_record(r);
        }
        let batch = RecordBatch::from_records(&recs);
        for m in registry().all() {
            prop_assert_eq!(
                bits(m.finish(&seq)),
                bits(m.fold_columns(&batch)),
                "{}: per-record vs fold_columns", m.name()
            );
        }
    }

    /// `OnlineUnion::insert_all` is exactly per-interval insertion, under
    /// arbitrary arrival order.
    #[test]
    fn insert_all_equals_insert(ivs in proptest::collection::vec(
        (0u64..1_000_000, 0u64..100_000), 0..64
    )) {
        let ivs: Vec<Interval> = ivs
            .into_iter()
            .map(|(s, l)| Interval::new(Nanos(s), Nanos(s + l)))
            .collect();
        let mut seq = OnlineUnion::new();
        for iv in &ivs {
            seq.insert(*iv);
        }
        let mut bat = OnlineUnion::new();
        bat.insert_all(&ivs);
        prop_assert_eq!(seq.total(), bat.total());
        prop_assert_eq!(seq.spans(), bat.spans());
    }
}
