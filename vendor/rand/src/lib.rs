//! Offline stand-in for the `rand` crate.
//!
//! Provides exactly the surface the workspace uses: `rngs::SmallRng`
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen::<u64>()`, `gen::<f64>()`, and `gen_range` over integer and float
//! ranges. The generator is xoshiro256++ seeded through SplitMix64 — the
//! same family real `rand 0.8` uses for `SmallRng` on 64-bit targets
//! (exact output streams may differ; all workspace determinism is
//! per-seed, not per-algorithm).

use std::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed. Equal seeds yield equal
    /// streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of a standard-distribution type: uniform over all
    /// values for integers, uniform in `[0, 1)` for floats.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from a range. Panics on an empty range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        ((rng.next_u64() >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_range {
    ($($t:ty),+) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128 - self.start as u128) as u64;
                // Multiply-shift rejection-free mapping; bias is
                // negligible (< span / 2^64) for simulation purposes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i128) + hi as i128) as $t
            }
        }
    )+};
}
int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit: f64 = Standard::sample(rng);
        let v = self.start + unit * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, seedable generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as rand does for small seeds.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut r = SmallRng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(10u64..17);
            assert!((10..17).contains(&v));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut r = SmallRng::seed_from_u64(5);
        let mut counts = [0u32; 8];
        for _ in 0..80_000 {
            counts[r.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "{counts:?}");
        }
    }
}
