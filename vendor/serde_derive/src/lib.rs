//! Offline stand-in for `serde_derive`.
//!
//! Generates [`Serialize`]/[`Deserialize`] impls for the shapes the
//! workspace actually uses, parsing the item with `proc_macro` alone (no
//! `syn`/`quote` — the build environment is offline):
//!
//! * named-field structs → `Value::Object` in declaration order,
//! * single-field tuple structs (always treated as
//!   `#[serde(transparent)]`, which is how every one in the workspace is
//!   marked) → the inner value,
//! * enums of unit and/or named-field variants, externally tagged like
//!   real serde: a unit variant is the variant name as a string, a
//!   struct variant is `{"Variant": {fields…}}`.
//!
//! Anything else (generics, tuple enum variants, multi-field tuple
//! structs) fails loudly at expansion time rather than generating wrong
//! code.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantShape {
    /// `Variant` — serialized as the bare variant name.
    Unit,
    /// `Variant { a, b }` — serialized as `{"Variant": {"a": …, "b": …}}`.
    Named(Vec<String>),
}

enum Shape {
    /// Named-field struct; field names in declaration order.
    Named(Vec<String>),
    /// Single-field tuple struct (serialized transparently).
    Newtype,
    /// Enum; variant names (with shapes) in declaration order.
    Enum(Vec<(String, VariantShape)>),
}

struct Item {
    name: String,
    shape: Shape,
}

/// Split a token stream at top-level commas. Tracks `<`/`>` depth so
/// commas inside generic arguments (which are bare puncts, not a token
/// group) don't split a field in two.
fn split_commas(ts: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for tt in ts {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth -= 1;
                cur.push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
            }
            _ => cur.push(tt),
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Strip leading attributes (`#[...]`) and visibility (`pub`,
/// `pub(crate)`, ...) from a token slice, returning the rest.
fn strip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                // `#` followed by a bracketed group.
                i += 2;
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    &tokens[i..]
}

fn parse_item(input: TokenStream, derive: &str) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes and visibility.
    while i < tokens.len() {
        match &tokens[i] {
            TokenTree::Punct(p) if p.as_char() == '#' => i += 2,
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive({derive}): expected `struct` or `enum`, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("derive({derive}): expected item name, found {other}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("derive({derive}) on `{name}`: generic items are not supported");
        }
    }
    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            // Tuple struct: only single-field (newtype) supported.
            let fields = split_commas(g.stream());
            if kind != "struct" || fields.len() != 1 {
                panic!("derive({derive}) on `{name}`: only newtype tuple structs are supported");
            }
            return Item {
                name,
                shape: Shape::Newtype,
            };
        }
        other => panic!("derive({derive}) on `{name}`: unsupported item body {other:?}"),
    };
    match kind.as_str() {
        "struct" => {
            let fields = split_commas(body)
                .into_iter()
                .map(|f| {
                    let rest = strip_attrs_and_vis(&f);
                    match rest.first() {
                        Some(TokenTree::Ident(id)) => id.to_string(),
                        other => panic!(
                            "derive({derive}) on `{name}`: expected field name, found {other:?}"
                        ),
                    }
                })
                .collect();
            Item {
                name,
                shape: Shape::Named(fields),
            }
        }
        "enum" => {
            let variants = split_commas(body)
                .into_iter()
                .map(|v| {
                    let rest = strip_attrs_and_vis(&v);
                    match rest {
                        [TokenTree::Ident(id)] => (id.to_string(), VariantShape::Unit),
                        [TokenTree::Ident(id), TokenTree::Group(g)]
                            if g.delimiter() == Delimiter::Brace =>
                        {
                            let variant = id.to_string();
                            let fields = split_commas(g.stream())
                                .into_iter()
                                .map(|f| {
                                    let rest = strip_attrs_and_vis(&f);
                                    match rest.first() {
                                        Some(TokenTree::Ident(id)) => id.to_string(),
                                        other => panic!(
                                            "derive({derive}) on `{name}::{variant}`: \
                                             expected field name, found {other:?}"
                                        ),
                                    }
                                })
                                .collect();
                            (variant, VariantShape::Named(fields))
                        }
                        _ => panic!(
                            "derive({derive}) on `{name}`: only unit and named-field \
                             enum variants are supported"
                        ),
                    }
                })
                .collect();
            Item {
                name,
                shape: Shape::Enum(variants),
            }
        }
        other => panic!("derive({derive}): unsupported item kind `{other}`"),
    }
}

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Serialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})),"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(" "))
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(\"{v}\".to_string()),")
                    }
                    VariantShape::Named(fields) => {
                        let binds = fields.join(", ");
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f})),")
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {binds} }} => ::serde::Value::Object(vec![\
                                 (\"{v}\".to_string(), \
                                  ::serde::Value::Object(vec![{}]))]),",
                            pairs.join(" ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .expect("derive(Serialize): generated code failed to parse")
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input, "Deserialize");
    let name = &item.name;
    let body = match &item.shape {
        Shape::Named(fields) => {
            // Each field chains its name onto any error bubbling out of
            // its value, so a deep failure reads like a path:
            // "field `base`: field `workload`: unknown ... variant".
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(v.field(\"{f}\")?)\
                             .map_err(|e| ::serde::Error(\
                                 ::std::format!(\"field `{f}`: {{}}\", e.0)))?,"
                    )
                })
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(" "))
        }
        Shape::Newtype => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
        Shape::Enum(variants) => {
            // Externally tagged: a unit variant arrives as a bare string,
            // a named-field variant as a single-key object keyed by the
            // variant name. Mis-shaped input for a known variant gets a
            // specific message rather than the generic "unknown variant".
            let str_arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!("\"{v}\" => Ok({name}::{v}),"),
                    VariantShape::Named(_) => format!(
                        "\"{v}\" => Err(::serde::Error(format!(\n\
                             \"{name} variant `{v}` carries fields; \
                              expected an object {{{{\\\"{v}\\\": {{{{..}}}}}}}}\"))),"
                    ),
                })
                .collect();
            let obj_arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => format!(
                        "\"{v}\" => Err(::serde::Error(format!(\n\
                             \"{name} variant `{v}` is a unit variant; \
                              expected the bare string \\\"{v}\\\"\"))),"
                    ),
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: ::serde::Deserialize::from_value(\
                                         inner.field(\"{f}\")?)\
                                         .map_err(|e| ::serde::Error(\
                                             ::std::format!(\
                                                 \"variant `{v}` field `{f}`: {{}}\", e.0)))?,"
                                )
                            })
                            .collect();
                        format!("\"{v}\" => Ok({name}::{v} {{ {} }}),", inits.join(" "))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => match s.as_str() {{\n\
                         {str_arms}\n\
                         other => Err(::serde::Error(format!(\n\
                             \"unknown {name} variant `{{other}}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, inner) = &pairs[0];\n\
                         match tag.as_str() {{\n\
                             {obj_arms}\n\
                             other => Err(::serde::Error(format!(\n\
                                 \"unknown {name} variant `{{other}}`\"))),\n\
                         }}\n\
                     }}\n\
                     other => Err(::serde::Error(format!(\n\
                         \"expected a variant string or single-key object for {name}, \
                          found {{}}\", other.kind()))),\n\
                 }}",
                str_arms = str_arms.join(" "),
                obj_arms = obj_arms.join(" "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("derive(Deserialize): generated code failed to parse")
}
