//! Offline stand-in for `criterion`.
//!
//! Mirrors the API surface the workspace benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `Bencher::iter`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple wall-clock
//! measurement loop: a short warm-up to pick an iteration count, then
//! `sample_size` timed samples, reporting the median per-iteration time
//! (plus derived throughput when one was declared). No statistics files,
//! no plots, no CLI flags beyond ignoring argv.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export so benches can use either `criterion::black_box` or
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Passed to the closure under test; `iter` runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` for the harness-chosen number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_one<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up: find an iteration count that takes ≳2 ms, capped so a
    // full run stays fast even for slow routines.
    let mut iters = 1u64;
    loop {
        let t = time_one(&mut f, iters);
        if t >= Duration::from_millis(2) || iters >= 1 << 20 {
            break;
        }
        iters = iters.saturating_mul(2);
    }
    let samples = sample_size.clamp(2, 100);
    let mut per_iter: Vec<f64> = (0..samples)
        .map(|_| time_one(&mut f, iters).as_secs_f64() / iters as f64)
        .collect();
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter[per_iter.len() / 2];
    let rate = match throughput {
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  {:.3e} elem/s", n as f64 / median)
        }
        Some(Throughput::Bytes(n)) if median > 0.0 => {
            format!("  {:.1} MB/s", n as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!("{label:<48} {}{rate}", format_time(median));
}

fn format_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:>10.3} s ")
    } else if secs >= 1e-3 {
        format!("{:>10.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:>10.3} µs", secs * 1e6)
    } else {
        format!("{:>10.3} ns", secs * 1e9)
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Declare per-iteration work for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a routine under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a routine that borrows a prepared input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (accepted for API compatibility).
    pub fn finish(&mut self) {}
}

/// Benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Fresh harness.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Start a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a standalone routine.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_benchmark(&id.to_string(), 10, None, f);
        self
    }
}

/// Bundle benchmark functions under a group name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::new();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("g");
        g.sample_size(2);
        g.throughput(Throughput::Elements(4));
        g.bench_with_input(BenchmarkId::new("sum", 4), &[1u64, 2, 3, 4][..], |b, xs| {
            b.iter(|| xs.iter().sum::<u64>())
        });
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::new();
        trivial(&mut c);
        c.bench_function("standalone", |b| b.iter(|| black_box(2) * 2));
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 7).to_string(), "a/7");
        assert_eq!(BenchmarkId::from_parameter(64).to_string(), "64");
    }
}
