//! Offline stand-in for the `serde_json` crate.
//!
//! Renders and parses JSON text over the vendored `serde` [`Value`] tree.
//! Output is deterministic: object fields appear in declaration order and
//! floats print via Rust's shortest round-trip formatting (`{:?}`), so two
//! serializations of equal data are byte-identical.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// JSON error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.0)
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a pretty JSON string (2-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Deserialize from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse(s)?;
    T::from_value(&value).map_err(Error::from)
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Value::Float(x) => {
            if x.is_finite() {
                // `{:?}` is the shortest representation that round-trips,
                // and keeps a `.0` on integral values like serde_json.
                let _ = write!(out, "{x:?}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8, what: &str) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {what}")))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("invalid literal, expected `{lit}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"', "`\"`")?;
        let mut s = String::new();
        loop {
            let b = self.peek().ok_or_else(|| self.err("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hi = self.parse_hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat(b'\\', "low surrogate")?;
                                self.eat(b'u', "low surrogate")?;
                                let lo = self.parse_hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-scan as UTF-8: step back and take the whole char.
                    self.pos -= 1;
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| self.err("invalid number"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::Int)
                .map_err(|_| self.err("invalid number"))
        } else {
            text.parse::<u64>()
                .map(Value::UInt)
                .map_err(|_| self.err("invalid number"))
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[', "`[`")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{', "`{`")?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':', "`:`")?;
            let value = self.parse_value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }
}

fn parse(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(from_str::<f64>("3").unwrap(), 3.0);
        assert_eq!(from_str::<Option<f64>>("null").unwrap(), None);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{8}\u{c}\u{1} π 🚀".to_string();
        let json = to_string(&s).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), s);
    }

    #[test]
    fn nested_roundtrip() {
        let v: Vec<(String, Option<f64>)> = vec![("a".into(), Some(1.25)), ("b".into(), None)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, r#"[["a",1.25],["b",null]]"#);
        let back: Vec<(String, Option<f64>)> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_output_shape() {
        let v: Vec<u64> = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn parse_whitespace_and_unicode_escapes() {
        assert_eq!(
            from_str::<Vec<String>>(" [ \"\\u00e9\" , \"\\ud83d\\ude00\" ] ").unwrap(),
            vec!["é".to_string(), "😀".to_string()]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(from_str::<u64>("[1").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("\"x\"").is_err());
    }
}
