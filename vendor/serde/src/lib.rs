//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors a minimal serialization framework with the same
//! surface the code actually uses: `#[derive(Serialize, Deserialize)]`
//! (named-field structs, newtype structs via `#[serde(transparent)]`, and
//! unit-variant enums), plus impls for the primitives, `String`, `Option`,
//! `Vec`, and small tuples. Instead of serde's visitor architecture it
//! round-trips everything through an owned [`Value`] tree; `serde_json`
//! renders and parses that tree as JSON text.
//!
//! Field order in [`Value::Object`] is declaration order, so serialized
//! output is deterministic — a property the experiment determinism tests
//! rely on.

pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// A serialized value tree (the JSON data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    UInt(u64),
    /// Negative integer.
    Int(i64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object; pairs kept in insertion (declaration) order.
    Object(Vec<(String, Value)>),
}

/// The shared null used when an object field is absent.
pub static NULL: Value = Value::Null;

impl Value {
    /// Look up an object field; absent fields read as `null` (so `Option`
    /// fields deserialize to `None` and everything else errors).
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Object(pairs) => Ok(pairs
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .unwrap_or(&NULL)),
            other => Err(Error(format!(
                "expected object with field `{name}`, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(pub String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Convert to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Convert from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

macro_rules! ser_uint {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match *v {
                    Value::UInt(n) => n,
                    Value::Int(n) if n >= 0 => n as u64,
                    ref other => {
                        return Err(Error(format!(
                            "expected unsigned integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 {
                    Value::Int(n)
                } else {
                    Value::UInt(n as u64)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match *v {
                    Value::Int(n) => n,
                    Value::UInt(n) => i64::try_from(n)
                        .map_err(|_| Error(format!("integer {n} out of range")))?,
                    ref other => {
                        return Err(Error(format!(
                            "expected integer, found {}",
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| {
                    Error(format!("integer {n} out of range for {}", stringify!($t)))
                })
            }
        }
    )+};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Float(x) => Ok(x),
            Value::UInt(n) => Ok(n as f64),
            Value::Int(n) => Ok(n as f64),
            ref other => Err(Error(format!("expected number, found {}", other.kind()))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            Value::Bool(b) => Ok(b),
            ref other => Err(Error(format!("expected bool, found {}", other.kind()))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, found {}", other.kind()))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: ?Sized + Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error(format!("expected array, found {}", other.kind()))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+))+) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match v {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    Value::Array(items) => Err(Error(format!(
                        "expected {LEN}-tuple, found array of {}",
                        items.len()
                    ))),
                    other => Err(Error(format!("expected array, found {}", other.kind()))),
                }
            }
        }
    )+};
}
ser_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-3i64).to_value()).unwrap(), -3);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn option_null_roundtrip() {
        let none: Option<f64> = None;
        assert_eq!(none.to_value(), Value::Null);
        assert_eq!(Option::<f64>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::from_value(&Value::Float(2.0)).unwrap(),
            Some(2.0)
        );
    }

    #[test]
    fn missing_field_reads_null() {
        let obj = Value::Object(vec![("a".into(), Value::UInt(1))]);
        assert_eq!(obj.field("a").unwrap(), &Value::UInt(1));
        assert_eq!(obj.field("b").unwrap(), &Value::Null);
        assert!(u64::from_value(obj.field("b").unwrap()).is_err());
    }

    #[test]
    fn tuples_roundtrip() {
        let t = ("x".to_string(), 1.5f64, 2u64);
        let v = t.to_value();
        let back: (String, f64, u64) = Deserialize::from_value(&v).unwrap();
        assert_eq!(back, t);
    }
}
