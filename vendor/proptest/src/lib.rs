//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace tests use: the [`proptest!`] macro,
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!`/`prop_oneof!`, the
//! [`Strategy`] trait with `prop_map` and `boxed`, [`Just`], integer/float
//! range strategies, strategy tuples, `any::<T>()`, and
//! [`collection::vec`]. Generation is deterministic: each test's RNG is
//! seeded from a hash of the test name, so failures reproduce exactly.
//! There is no shrinking — a failing case panics with the assertion
//! message as-is. Case count defaults to 64 and honours the
//! `PROPTEST_CASES` environment variable.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// RNG handed to strategies by the runner.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Seed deterministically.
    pub fn seed_from_u64(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen::<u64>()
    }

    /// Uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform in `[lo, hi)`; `lo` if the range is empty or single.
    pub fn index(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo + 1 {
            lo
        } else {
            self.inner.gen_range(lo..hi)
        }
    }
}

/// Marker returned by `prop_assume!` when a case doesn't apply.
#[derive(Debug)]
pub struct Rejected;

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies (`prop_oneof!`).
pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty(), "prop_oneof! needs at least one arm");
        let i = rng.index(0, self.0.len());
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let hi = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + hi) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )+};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        let v = self.start + rng.unit() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! tuple_strategy {
    ($($name:ident: $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical strategy for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// Draw one value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),+) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )+};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit()
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Inclusive length bounds for collection strategies.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    /// Vector of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Generate `Vec`s whose length falls in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.index(self.size.min, self.size.max + 1);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Test-case driver used by the [`proptest!`] macro expansion.
pub mod test_runner {
    use super::{Rejected, TestRng};

    fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64)
    }

    fn seed_for(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Run `f` for the configured number of cases. `Err(Rejected)` from
    /// `prop_assume!` skips the case; too many skips fail the test so a
    /// vacuous property can't pass silently.
    pub fn run<F>(name: &str, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), Rejected>,
    {
        let cases = case_count();
        let mut rng = TestRng::seed_from_u64(seed_for(name));
        let mut accepted = 0u32;
        let mut rejected = 0u32;
        while accepted < cases {
            match f(&mut rng) {
                Ok(()) => accepted += 1,
                Err(Rejected) => {
                    rejected += 1;
                    assert!(
                        rejected < cases.saturating_mul(16).max(1024),
                        "{name}: too many prop_assume! rejections \
                         ({rejected} rejected, {accepted} accepted)"
                    );
                }
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Define `#[test]` functions whose arguments are drawn from strategies.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::test_runner::run(stringify!($name), |__bps_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __bps_rng);)+
                    $body
                    Ok(())
                });
            }
        )+
    };
}

/// Assert within a property test body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Assert equality within a property test body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+);
    };
}

/// Skip the current case when a precondition doesn't hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::Rejected);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::Strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u64..17, f in 0.5f64..0.75, n in 1usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.5..0.75).contains(&f));
            prop_assert!((1..4).contains(&n));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(any::<u8>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn tuples_and_map(p in (0u64..10, 0u64..10).prop_map(|(a, b)| a + b)) {
            prop_assert!(p < 19);
        }

        #[test]
        fn oneof_and_assume(v in prop_oneof![Just(1u8), Just(2u8)], other in 0u8..4) {
            prop_assume!(other != 0);
            prop_assert!(v == 1 || v == 2);
            prop_assert_eq!(v as u16 * 2, v as u16 + v as u16);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::{Strategy, TestRng};
        let s = crate::collection::vec(0u64..1000, 1..10);
        let a: Vec<Vec<u64>> = {
            let mut r = TestRng::seed_from_u64(42);
            (0..5).map(|_| s.generate(&mut r)).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut r = TestRng::seed_from_u64(42);
            (0..5).map(|_| s.generate(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
