//! The full toolkit loop on a simulated run: simulate → persist in both
//! formats → reload → validate → windowed analysis → per-process breakdown.

use bps::core::record::Layer;
use bps::core::report::per_process;
use bps::core::time::Dur;
use bps::core::window::windowed_series;
use bps::experiments::runner::{run_case, CaseSpec, LayoutPolicy, Storage};
use bps::trace::validate::{is_usable, validate};
use bps::workloads::iozone::Iozone;

#[test]
fn simulate_persist_reload_analyze() {
    let dir = std::env::temp_dir().join("bps_toolkit_roundtrip");
    std::fs::create_dir_all(&dir).unwrap();

    // Simulate a 3-process run.
    let w = Iozone::throughput_read(3, 16 << 20, 256 << 10);
    let mut spec = CaseSpec::new(Storage::Pvfs { servers: 3 }, &w);
    spec.layout = LayoutPolicy::PinnedPerFile;
    spec.clients = 3;
    let trace = run_case(&spec, 5);

    // The simulated trace is clean.
    let findings = validate(&trace);
    assert!(is_usable(&findings), "{findings:?}");

    // Persist both ways; reload by extension.
    let json_path = dir.join("run.json");
    let bin_path = dir.join("run.bpstrc");
    bps::trace::format::store_path(&trace, &json_path).unwrap();
    bps::trace::format::store_path(&trace, &bin_path).unwrap();
    let from_json = bps::trace::format::load_path(&json_path).unwrap();
    let from_bin = bps::trace::format::load_path(&bin_path).unwrap();
    assert_eq!(from_json.records(), trace.records());
    assert_eq!(from_bin.len(), trace.len());

    // Windowed analysis: blocks conserved, at least one busy window.
    let series = windowed_series(&from_json, Dur::from_millis(50));
    let total_blocks: f64 = series.iter().map(|p| p.blocks).sum();
    assert!(
        (total_blocks - trace.app_blocks() as f64).abs() < 1e-6 * total_blocks,
        "{total_blocks} vs {}",
        trace.app_blocks()
    );
    assert!(series.iter().any(|p| p.bps.is_some()));

    // Per-process breakdown: three processes, ops summing to the trace's.
    let rows = per_process(&from_json);
    assert_eq!(rows.len(), 3);
    let ops: u64 = rows.iter().map(|r| r.ops).sum();
    assert_eq!(ops, trace.op_count(Layer::Application));
    for row in &rows {
        assert!(row.bps.unwrap() > 0.0);
    }

    std::fs::remove_file(json_path).ok();
    std::fs::remove_file(bin_path).ok();
}

#[test]
fn validation_catches_a_doctored_trace() {
    // Start clean, then doctor it: duplicate a record with inverted-looking
    // (zero-length) durations en masse.
    let w = Iozone::seq_read(4 << 20, 512 << 10);
    let spec = CaseSpec::new(Storage::Ssd, &w);
    let trace = run_case(&spec, 1);
    let mut doctored = bps::core::trace::Trace::new();
    for r in trace.records() {
        let mut broken = *r;
        broken.end = broken.start; // zero duration
        doctored.push(broken);
    }
    let findings = validate(&doctored);
    assert!(!is_usable(&findings), "{findings:?}");
}
