//! The paper's specific claims, checked end-to-end against the simulated
//! I/O system (not hand-built traces): each figure's qualitative verdict
//! at test scale.

use bps::experiments::figures::{fig04, fig05, fig09, fig11, fig12, summary};
use bps::experiments::scale::Scale;

#[test]
fn set1_devices_all_metrics_behave() {
    // Paper Fig. 4: "All of the four metrics perform well."
    let fig = fig04::run(&Scale::tiny());
    for m in ["IOPS", "BW", "ARPT", "BPS"] {
        assert_eq!(fig.direction_correct(m), Some(true), "{m}\n{fig}");
    }
}

#[test]
fn set2_sizes_iops_and_arpt_mislead() {
    // Paper Figs. 5/7: IOPS falls 5156 → 732 while the app runs 2.3x
    // faster; both IOPS and ARPT get the direction wrong.
    let fig = fig05::run(&Scale::tiny());
    assert_eq!(fig.direction_correct("IOPS"), Some(false), "{fig}");
    assert_eq!(fig.direction_correct("ARPT"), Some(false), "{fig}");
    assert_eq!(fig.direction_correct("BW"), Some(true), "{fig}");
    assert_eq!(fig.direction_correct("BPS"), Some(true), "{fig}");
    // The IOPS-vs-time anticorrelation is strong, as in the paper.
    assert!(fig.normalized("IOPS").unwrap() < -0.7, "{fig}");
}

#[test]
fn set3_concurrency_arpt_misleads() {
    // Paper Figs. 9/11: ARPT wrong under concurrency, throughput metrics
    // fine.
    let pure = fig09::run(&Scale::tiny());
    assert_eq!(pure.direction_correct("ARPT"), Some(false), "{pure}");
    assert_eq!(pure.direction_correct("BPS"), Some(true), "{pure}");
    let ior = fig11::run(&Scale::tiny());
    assert_eq!(ior.direction_correct("ARPT"), Some(false), "{ior}");
    assert_eq!(ior.direction_correct("BPS"), Some(true), "{ior}");
    // Paper: ARPT correlation is also weak in the IOR case (~0.39),
    // weaker than the throughput metrics' (~0.91).
    assert!(
        ior.normalized("ARPT").unwrap().abs() < ior.normalized("BPS").unwrap(),
        "{ior}"
    );
}

#[test]
fn set4_sieving_bandwidth_misleads() {
    // Paper Fig. 12: "BW has a wrong correlation direction, which will
    // mislead people."
    let fig = fig12::run(&Scale::tiny());
    assert_eq!(fig.direction_correct("BW"), Some(false), "{fig}");
    for m in ["IOPS", "ARPT", "BPS"] {
        assert_eq!(fig.direction_correct(m), Some(true), "{m}\n{fig}");
    }
}

#[test]
fn headline_bps_wins_every_scenario() {
    // Paper §IV.C.5: "BPS is the only metric that works well for all the
    // scenarios."
    let figures = summary::all_figures(&Scale::tiny());
    let verdicts = summary::verdicts(&figures);
    for (name, mean_cc, wrong) in verdicts {
        match name.as_str() {
            "BPS" => {
                assert_eq!(wrong, 0, "BPS misled somewhere");
                assert!(mean_cc > 0.75, "BPS mean CC {mean_cc}");
            }
            _ => assert!(wrong >= 1, "{name} should mislead in some scenario"),
        }
    }
}
