//! Determinism and seed-sensitivity of the whole stack: identical seeds
//! reproduce byte-identical traces, different seeds differ only in timing.

use bps::core::record::Layer;
use bps::experiments::runner::{run_case, CaseSpec, Storage};
use bps::workloads::hpio::Hpio;
use bps::workloads::ior::Ior;
use bps::workloads::iozone::Iozone;

#[test]
fn identical_seeds_identical_traces_across_storages() {
    let w = Iozone::seq_read(8 << 20, 256 << 10);
    for storage in [Storage::Hdd, Storage::Ssd, Storage::Pvfs { servers: 3 }] {
        let spec = CaseSpec::new(storage, &w);
        let a = run_case(&spec, 42);
        let b = run_case(&spec, 42);
        assert_eq!(a.records(), b.records(), "{storage:?}");
        assert_eq!(a.execution_time(), b.execution_time());
    }
}

#[test]
fn different_seeds_same_structure_different_timing() {
    let w = Ior::shared_read(4, 8 << 20);
    let mut spec = CaseSpec::new(Storage::Pvfs { servers: 4 }, &w);
    spec.clients = 4;
    let a = run_case(&spec, 1);
    let b = run_case(&spec, 2);
    // Same request structure...
    assert_eq!(a.len(), b.len());
    assert_eq!(a.bytes(Layer::Application), b.bytes(Layer::Application));
    assert_eq!(a.bytes(Layer::FileSystem), b.bytes(Layer::FileSystem));
    // ...different timing.
    assert_ne!(a.execution_time(), b.execution_time());
}

#[test]
fn hpio_sieving_structure_deterministic() {
    let w = Hpio::paper_shape(1024, 512, 2);
    let mut spec = CaseSpec::new(Storage::Pvfs { servers: 2 }, &w);
    spec.clients = 2;
    let a = run_case(&spec, 9);
    let b = run_case(&spec, 9);
    assert_eq!(a.records(), b.records());
    // Sieving moved the same (hole-inflated) volume both times.
    assert!(a.bytes(Layer::FileSystem) > a.bytes(Layer::Application));
}

#[test]
fn seed_variation_is_bounded() {
    // 5-run averaging only makes sense if the jitter is a few percent, not
    // a few x.
    let w = Iozone::seq_read(8 << 20, 512 << 10);
    let spec = CaseSpec::new(Storage::Hdd, &w);
    let times: Vec<f64> = (1..=5)
        .map(|s| run_case(&spec, s).execution_time().as_secs_f64())
        .collect();
    let min = times.iter().cloned().fold(f64::MAX, f64::min);
    let max = times.iter().cloned().fold(f64::MIN, f64::max);
    assert!(max / min < 1.25, "{times:?}");
}
