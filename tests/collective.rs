//! Engine-driven collective I/O: barrier semantics, trace correctness, and
//! the two-phase win over independent sieved reads on interleaved patterns.

use bps::core::extent::Extent;
use bps::core::metrics::{Bps, Metric};
use bps::core::record::{FileId, Layer};
use bps::core::time::Dur;
use bps::fs::cluster::{Cluster, ClusterConfig, DeviceSpec};
use bps::fs::layout::StripeLayout;
use bps::fs::pfs::ParallelFs;
use bps::middleware::process::run_workload;
use bps::middleware::stack::{FsBackend, IoStack};
use bps::sim::device::DiskSched;
use bps::sim::rng::Jitter;
use bps::workloads::spec::{AppOp, OpStream, Workload};

/// The canonical two-phase motivator: process `p` owns blocks
/// `p, p+n, p+2n, ...` of a shared file — everyone's independent request
/// is noncontiguous, the union is perfectly contiguous.
struct Interleaved {
    procs: usize,
    blocks_per_proc: u64,
    block: u64,
    collective: bool,
}

impl Workload for Interleaved {
    fn name(&self) -> &'static str {
        "interleaved"
    }
    fn processes(&self) -> usize {
        self.procs
    }
    fn file_sizes(&self) -> Vec<u64> {
        vec![self.procs as u64 * self.blocks_per_proc * self.block]
    }
    fn stream(&self, pid: usize) -> OpStream {
        let regions: Vec<Extent> = (0..self.blocks_per_proc)
            .map(|b| {
                Extent::new(
                    (b * self.procs as u64 + pid as u64) * self.block,
                    self.block,
                )
            })
            .collect();
        let op = if self.collective {
            AppOp::CollectiveReadNoncontig { file: 0, regions }
        } else {
            AppOp::ReadNoncontig { file: 0, regions }
        };
        Box::new(std::iter::once(op))
    }
}

fn run(w: &Interleaved, seed: u64) -> bps::core::trace::Trace {
    let cluster = Cluster::new(&ClusterConfig {
        servers: 4,
        clients: w.processes(),
        device: DeviceSpec::Hdd(bps::sim::device::hdd::HddProfile::sata_7200_250gb()),
        sched: DiskSched::Fifo,
        server_cpu: Dur::from_micros(25),
        jitter: Jitter::NONE,
        seed,
        record_device_layer: false,
        record_net_layer: false,
        fault: bps::sim::fault::FaultPlan::none(),
    });
    let mut pfs = ParallelFs::new(4);
    let files: Vec<FileId> = w
        .file_sizes()
        .iter()
        .map(|&s| pfs.create(s, StripeLayout::default_over(4)))
        .collect();
    let stack = IoStack::new(cluster, FsBackend::Parallel(pfs));
    let (trace, _) = run_workload(stack, w, &files, Dur::from_micros(5));
    trace
}

fn workload(procs: usize, collective: bool) -> Interleaved {
    Interleaved {
        procs,
        blocks_per_proc: 512,
        block: 16 << 10, // 32 MiB shared file at 4 procs
        collective,
    }
}

#[test]
fn collective_run_completes_and_records_all_processes() {
    let w = workload(4, true);
    let trace = run(&w, 1);
    // One app record per collective call per process.
    assert_eq!(trace.pids(Layer::Application).len(), 4);
    assert_eq!(trace.bytes(Layer::Application), w.required_bytes());
    assert!(Bps.compute(&trace).unwrap() > 0.0);
    // Collective reads the union once; independent sieving drags the other
    // processes' blocks along as holes for every process (~4x the volume).
    let per_proc_sieve = run(&workload(4, false), 1);
    assert!(
        trace.bytes(Layer::FileSystem) * 3 < per_proc_sieve.bytes(Layer::FileSystem),
        "collective moved {} vs independent {}",
        trace.bytes(Layer::FileSystem),
        per_proc_sieve.bytes(Layer::FileSystem)
    );
}

#[test]
fn collective_beats_independent_on_interleaved_pattern() {
    let coll = run(&workload(4, true), 2);
    let indep = run(&workload(4, false), 2);
    assert!(
        coll.execution_time() < indep.execution_time(),
        "collective {} vs independent {}",
        coll.execution_time(),
        indep.execution_time()
    );
    // BPS agrees with the execution times (same required bytes).
    assert!(Bps.compute(&coll).unwrap() > Bps.compute(&indep).unwrap());
}

#[test]
fn collective_is_deterministic() {
    let a = run(&workload(3, true), 7);
    let b = run(&workload(3, true), 7);
    assert_eq!(a.records(), b.records());
}

#[test]
fn single_process_collective_degenerates_gracefully() {
    let w = workload(1, true);
    let trace = run(&w, 3);
    assert_eq!(trace.bytes(Layer::Application), w.required_bytes());
}
