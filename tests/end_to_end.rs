//! End-to-end integration: workload generation → simulated I/O stack →
//! trace collection → metrics → correlation, plus persistence round-trips.

use bps::core::metrics::{Bandwidth, Bps, Iops, Metric};
use bps::core::record::Layer;
use bps::core::report::{CcReport, MetricsSummary};
use bps::core::time::Dur;
use bps::core::trace::Trace;
use bps::experiments::runner::{run_case, CaseSpec, LayoutPolicy, Storage};
use bps::fs::layout::StripeLayout;
use bps::middleware::process::run_workload;
use bps::middleware::stack::{FsBackend, IoStack};
use bps::workloads::ior::Ior;
use bps::workloads::iozone::Iozone;
use bps::workloads::spec::Workload;

fn pvfs_stack(servers: usize, clients: usize, seed: u64) -> bps::fs::cluster::Cluster {
    let mut cfg = bps::fs::cluster::ClusterConfig::hdd_cluster(servers, clients, seed);
    cfg.jitter = bps::sim::rng::Jitter::NONE;
    bps::fs::cluster::Cluster::new(&cfg)
}

#[test]
fn full_pipeline_produces_consistent_layers() {
    let w = Iozone::seq_read(32 << 20, 1 << 20);
    let cluster = pvfs_stack(4, 1, 7);
    let mut pfs = bps::fs::pfs::ParallelFs::new(4);
    let files: Vec<_> = w
        .file_sizes()
        .iter()
        .map(|&s| pfs.create(s, StripeLayout::default_over(4)))
        .collect();
    let stack = IoStack::new(cluster, FsBackend::Parallel(pfs));
    let (trace, outcome) = run_workload(stack, &w, &files, Dur::from_micros(5));

    // Application layer: exactly the workload's requests.
    assert_eq!(trace.op_count(Layer::Application), 32);
    assert_eq!(trace.bytes(Layer::Application), 32 << 20);
    // FS layer moved the same bytes (no sieving/prefetch on contiguous
    // reads) in 64 KB stripe chunks.
    assert_eq!(trace.bytes(Layer::FileSystem), 32 << 20);
    assert_eq!(trace.op_count(Layer::FileSystem), 512);
    // Exec time covers the I/O time.
    assert!(trace.execution_time() >= trace.overlapped_io_time(Layer::Application));
    assert_eq!(trace.execution_time(), outcome.makespan());

    // All metrics computable; summary renders.
    let summary = MetricsSummary::from_trace(&trace);
    assert!(summary.value("BPS").unwrap() > 0.0);
    assert!(summary.value("IOEff").unwrap() > 0.99);
    assert!(format!("{summary}").contains("BPS"));
}

#[test]
fn cc_report_from_simulated_sweep() {
    // A size sweep through the whole stack: BPS must correlate correctly,
    // IOPS must not.
    let cases: Vec<Trace> = [16u64 << 10, 256 << 10, 2 << 20]
        .iter()
        .map(|&rs| {
            let w = Iozone::seq_read(16 << 20, rs);
            let spec = CaseSpec::new(Storage::Hdd, &w);
            run_case(&spec, 1)
        })
        .collect();
    let report = CcReport::from_cases("size sweep", &cases);
    assert!(report.normalized("BPS").unwrap() > 0.8);
    assert!(report.normalized("IOPS").unwrap() < 0.0);
}

#[test]
fn trace_survives_binary_roundtrip_with_metrics() {
    let w = Ior::shared_read(4, 8 << 20);
    let mut spec = CaseSpec::new(Storage::Pvfs { servers: 4 }, &w);
    spec.layout = LayoutPolicy::DefaultStripe;
    spec.clients = 4;
    let trace = run_case(&spec, 3);
    let bin = bps::trace::format::to_binary(&trace);
    let back = bps::trace::format::from_binary(&bin).unwrap();
    assert_eq!(back.len(), trace.len());
    for m in [&Bps as &dyn Metric, &Iops] {
        let a = m.compute(&trace).unwrap();
        let b = m.compute(&back).unwrap();
        assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "{}", m.name());
    }
    // JSON round-trip is fully lossless.
    let json = bps::trace::format::to_json(&trace).unwrap();
    let back = bps::trace::format::from_json(&json).unwrap();
    assert_eq!(back.records(), trace.records());
    assert_eq!(
        Bandwidth.compute(&back).unwrap(),
        Bandwidth.compute(&trace).unwrap()
    );
}

#[test]
fn collector_gathers_simulated_processes() {
    // Split a simulated trace by process, drain through recorders, and
    // verify the collector's gather step rebuilds the same metrics.
    let w = Iozone::throughput_read(3, 8 << 20, 512 << 10);
    let mut spec = CaseSpec::new(Storage::Pvfs { servers: 3 }, &w);
    spec.layout = LayoutPolicy::PinnedPerFile;
    spec.clients = 3;
    let trace = run_case(&spec, 2);

    let mut collector = bps::trace::collector::Collector::new();
    for pid in trace.pids(Layer::Application) {
        let recs: Vec<_> = trace
            .records()
            .iter()
            .filter(|r| r.pid == pid)
            .copied()
            .collect();
        collector.add_process(recs);
    }
    let mut gathered = collector.into_trace();
    gathered.set_execution_time(trace.execution_time());
    assert_eq!(gathered.len(), trace.len());
    let a = Bps.compute(&trace).unwrap();
    let b = Bps.compute(&gathered).unwrap();
    assert!((a - b).abs() < 1e-9 * a);
}

#[test]
fn workspace_facade_reexports_work() {
    // The `bps` crate's prelude is usable on its own.
    use bps::prelude::*;
    let mut t = Trace::new();
    t.push(IoRecord::app_read(
        ProcessId(0),
        FileId(0),
        0,
        BLOCK_SIZE * 8,
        Nanos::ZERO,
        Nanos::from_millis(1),
    ));
    assert_eq!(t.app_blocks(), 8);
    assert!(Bps.compute(&t).unwrap() > 0.0);
}
