//! # bps — workspace facade
//!
//! Re-exports the whole BPS reproduction so examples and integration tests
//! can `use bps::...` without naming individual crates. See the crate-level
//! docs of each member for details:
//!
//! * [`core`] — the BPS metric, interval algebra, metrics, correlation.
//! * [`sim`] — the discrete-event simulated I/O substrate.
//! * [`fs`] — local and PVFS2-like striped parallel file systems.
//! * [`middleware`] — POSIX/MPI-IO layers, data sieving, collective I/O.
//! * [`workloads`] — IOzone-, IOR- and HPIO-like generators.
//! * [`topology`] — composable component-graph stack topologies.
//! * [`trace`] — recorders, collectors, formats, the real-file tracer.
//! * [`experiments`] — the per-figure reproduction harness.

pub use bps_core as core;
pub use bps_experiments as experiments;
pub use bps_fs as fs;
pub use bps_middleware as middleware;
pub use bps_sim as sim;
pub use bps_topology as topology;
pub use bps_trace as trace;
pub use bps_workloads as workloads;

/// One-stop prelude for examples: the core prelude plus the most common
/// simulator and experiment entry points.
pub mod prelude {
    pub use bps_core::prelude::*;
}
