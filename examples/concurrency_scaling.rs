//! The paper's Set 3 in miniature: IOR-style shared-file reads with
//! growing process counts on the simulated 8-server parallel file system.
//! Watch execution time fall and then saturate while ARPT drifts up —
//! and BPS track the truth throughout.
//!
//! ```text
//! cargo run --release --example concurrency_scaling
//! ```

use bps::core::metrics::extended::{EffectiveParallelism, MaxQueueDepth};
use bps::core::metrics::{Arpt, Bps, Metric};
use bps::experiments::runner::{run_case, CaseSpec, LayoutPolicy, Storage};
use bps::workloads::ior::Ior;

fn main() {
    let total = 64u64 << 20;
    println!("IOR shared-file read, 64 KB transfers, 8 I/O servers, {total} bytes total\n");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>8} {:>8}",
        "np", "exec(s)", "ARPT(ms)", "BPS", "EffPar", "MaxQD"
    );
    for np in [1usize, 2, 4, 8, 16, 32] {
        let w = Ior::shared_read(np, total);
        let mut spec = CaseSpec::new(Storage::Pvfs { servers: 8 }, &w);
        spec.layout = LayoutPolicy::DefaultStripe;
        spec.clients = np;
        let trace = run_case(&spec, 1);
        println!(
            "{np:>5} {:>10.3} {:>12.3} {:>12.0} {:>8.2} {:>8.0}",
            trace.execution_time().as_secs_f64(),
            Arpt.compute(&trace).unwrap() * 1e3,
            Bps.compute(&trace).unwrap(),
            EffectiveParallelism.compute(&trace).unwrap(),
            MaxQueueDepth.compute(&trace).unwrap(),
        );
    }
    println!("\nEffective parallelism (summed / overlapped I/O time) confirms the");
    println!("concurrency actually rises; ARPT grows with queueing even while the");
    println!("application finishes sooner — the paper's Figures 10/11 in one table.");
}
