//! Print a bundled scenario as JSON — the starting point for authoring a
//! custom one:
//!
//! ```text
//! cargo run --example scenario_to_json fig9 > my_sweep.json
//! $EDITOR my_sweep.json        # rename it, change the grid...
//! cargo run --release --bin reproduce -- run my_sweep.json --tiny
//! ```

use bps::experiments::scenario::registry;

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fig5".to_string());
    match registry::find(&name) {
        Some(sc) => println!("{}", serde_json::to_string_pretty(&sc).unwrap()),
        None => {
            eprintln!("no bundled scenario named `{name}`; one of:");
            for n in registry::names() {
                eprintln!("  {n}");
            }
            std::process::exit(1);
        }
    }
}
