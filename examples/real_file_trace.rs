//! Measure the BPS of *real* I/O: trace actual file reads/writes on this
//! machine through [`bps::trace::realfile::TracedFile`] and run the full
//! metric suite on the wall-clock trace — the "easy-to-use toolkit" the
//! paper's conclusion promises.
//!
//! ```text
//! cargo run --release --example real_file_trace
//! ```

use bps::core::record::FileId;
use bps::core::report::MetricsSummary;
use bps::trace::realfile::{trace_session, TracedFile};
use std::io::{Read, Seek, SeekFrom, Write};

fn main() -> std::io::Result<()> {
    let dir = std::env::temp_dir().join("bps_example");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("workload.bin");

    let total = 64u64 << 20; // 64 MiB
    let record = 256u64 << 10; // 256 KiB records

    let ((), trace) = trace_session(|clock, recorder| {
        // Write phase.
        {
            let mut w =
                TracedFile::create(&path, FileId(0), recorder.clone(), clock.clone()).unwrap();
            let buf = vec![0xA5u8; record as usize];
            for _ in 0..total / record {
                w.write_all(&buf).unwrap();
            }
            w.flush().unwrap();
        }
        // Sequential re-read phase.
        {
            let mut r =
                TracedFile::open(&path, FileId(0), recorder.clone(), clock.clone()).unwrap();
            let mut buf = vec![0u8; record as usize];
            for _ in 0..total / record {
                r.read_exact(&mut buf).unwrap();
            }
        }
        // A few random reads.
        {
            let mut r =
                TracedFile::open(&path, FileId(0), recorder.clone(), clock.clone()).unwrap();
            let mut buf = vec![0u8; 4096];
            for i in 0..64u64 {
                let off = (i * 7919 * 4096) % (total - 4096);
                r.seek(SeekFrom::Start(off)).unwrap();
                r.read_exact(&mut buf).unwrap();
            }
        }
    });

    println!(
        "traced {} real I/O operations, {} bytes requested",
        trace.len(),
        trace.bytes(bps::core::record::Layer::Application)
    );
    println!("{}", MetricsSummary::from_trace(&trace));

    // Persist the trace in both toolkit formats.
    let bin_path = dir.join("trace.bpstrc");
    bps::trace::format::write_binary_file(&trace, &bin_path)?;
    println!(
        "binary trace: {} ({} bytes, 32 B/record as in the paper's overhead analysis)",
        bin_path.display(),
        std::fs::metadata(&bin_path)?.len()
    );

    std::fs::remove_file(&path).ok();
    Ok(())
}
