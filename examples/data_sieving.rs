//! The paper's Set 4 in miniature: noncontiguous HPIO reads through data
//! sieving, where the file system's bandwidth number *improves* while the
//! application gets slower — BPS is the metric that stays honest.
//!
//! ```text
//! cargo run --release --example data_sieving
//! ```

use bps::core::metrics::{Bandwidth, Bps, Metric};
use bps::core::record::Layer;
use bps::experiments::runner::{run_case, CaseSpec, LayoutPolicy, Storage};
use bps::middleware::sieving::SievingConfig;
use bps::workloads::hpio::Hpio;

fn main() {
    println!("HPIO noncontiguous read, 4096 regions x 256 B, data sieving ON");
    println!("region spacing grows -> the middleware reads ever more hole bytes\n");
    println!(
        "{:<10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "spacing", "required", "moved", "exec(s)", "BW(MB/s)", "BPS"
    );
    for spacing in [8u64, 256, 1024, 4096] {
        let w = Hpio::paper_shape(4096, spacing, 2);
        let mut spec = CaseSpec::new(Storage::Pvfs { servers: 4 }, &w);
        spec.layout = LayoutPolicy::DefaultStripe;
        spec.clients = 2;
        spec.sieving = SievingConfig::romio_default();
        let trace = run_case(&spec, 1);
        println!(
            "{:<10} {:>12} {:>12} {:>10.3} {:>12.1} {:>12.0}",
            format!("{spacing}B"),
            trace.bytes(Layer::Application),
            trace.bytes(Layer::FileSystem),
            trace.execution_time().as_secs_f64(),
            Bandwidth.compute(&trace).unwrap(),
            Bps.compute(&trace).unwrap(),
        );
    }
    println!("\nThe application always needs {} bytes;", 4096 * 256);
    println!("bandwidth rises with the hole volume (it measures the file system),");
    println!("BPS falls with the application's actual slowdown (it measures the");
    println!("I/O system) — the paper's Figure 12 in four rows.");

    // Bonus: the same pattern with sieving disabled, to show the crossover
    // that makes sieving worthwhile at small spacings.
    println!("\nSame pattern, sieving OFF (per-region reads):");
    println!("{:<10} {:>10}", "spacing", "exec(s)");
    for spacing in [8u64, 256, 1024, 4096] {
        let w = Hpio::paper_shape(4096, spacing, 2);
        let mut spec = CaseSpec::new(Storage::Pvfs { servers: 4 }, &w);
        spec.layout = LayoutPolicy::DefaultStripe;
        spec.clients = 2;
        spec.sieving = SievingConfig::disabled();
        let trace = run_case(&spec, 1);
        println!(
            "{:<10} {:>10.3}",
            format!("{spacing}B"),
            trace.execution_time().as_secs_f64()
        );
    }
}
