//! Quickstart: compute BPS (and the conventional metrics) from a trace.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the paper's Figure 2 scenario by hand — four requests, three
//! overlapping, one after an idle gap — runs the measurement methodology,
//! and prints every metric the toolkit knows.

use bps::prelude::*;

fn main() {
    // Step 1 (paper §III.B): record each I/O access of each process.
    // Here: R1–R3 overlap (three concurrent 1 MiB reads from different
    // processes), then 1 ms of idle time, then R4.
    let mib = 1 << 20;
    let ms = Nanos::from_millis;
    let mut trace = Trace::new();
    trace.push(IoRecord::app_read(
        ProcessId(0),
        FileId(0),
        0,
        mib,
        ms(0),
        ms(4),
    ));
    trace.push(IoRecord::app_read(
        ProcessId(1),
        FileId(0),
        mib,
        mib,
        ms(1),
        ms(5),
    ));
    trace.push(IoRecord::app_read(
        ProcessId(2),
        FileId(0),
        2 * mib,
        mib,
        ms(2),
        ms(6),
    ));
    trace.push(IoRecord::app_read(
        ProcessId(0),
        FileId(0),
        3 * mib,
        mib,
        ms(7),
        ms(9),
    ));

    // Step 2: the records above are already gathered into one collection.
    // Step 3: the overlapped I/O time T (idle [6ms, 7ms) excluded).
    let t = trace.overlapped_io_time(Layer::Application);
    let b = trace.app_blocks();
    println!("B = {b} blocks required by the application");
    println!(
        "T = {t} of overlapped I/O time (naive sum would be {})",
        trace.summed_io_time(Layer::Application)
    );
    println!(
        "BPS = B / T = {:.1} blocks/s\n",
        Bps.compute(&trace).unwrap()
    );

    // The complete metric suite for the same trace.
    println!("{}", MetricsSummary::from_trace(&trace));

    // Why ARPT misleads here (paper Figure 1c): the same four requests run
    // strictly sequentially have the same ARPT but a much lower BPS.
    let mut sequential = Trace::new();
    for i in 0..4u64 {
        sequential.push(IoRecord::app_read(
            ProcessId(0),
            FileId(0),
            i * mib,
            mib,
            ms(i * 4),
            ms(i * 4 + 4),
        ));
    }
    println!(
        "concurrent: ARPT {:.4} s, BPS {:.0}",
        Arpt.compute(&trace).unwrap(),
        Bps.compute(&trace).unwrap()
    );
    println!(
        "sequential: ARPT {:.4} s, BPS {:.0}  <- same-ish ARPT, far lower BPS",
        Arpt.compute(&sequential).unwrap(),
        Bps.compute(&sequential).unwrap()
    );
}
