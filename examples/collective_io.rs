//! Two-phase collective I/O (extension beyond the paper's evaluation):
//! run the classic interleaved access pattern through the engine twice —
//! once as independent sieved reads, once as a collective with barrier
//! semantics — and let BPS rank the two designs, the way the paper's
//! conclusion proposes evaluating optimizations.
//!
//! ```text
//! cargo run --release --example collective_io
//! ```

use bps::core::extent::Extent;
use bps::core::metrics::{Bps, Metric};
use bps::core::record::{FileId, Layer};
use bps::core::time::Dur;
use bps::fs::cluster::{Cluster, ClusterConfig};
use bps::fs::layout::StripeLayout;
use bps::fs::pfs::ParallelFs;
use bps::middleware::process::run_workload;
use bps::middleware::stack::{FsBackend, IoStack};
use bps::workloads::spec::{AppOp, OpStream, Workload};

/// Process `p` owns blocks `p, p+n, p+2n, ...` — independent requests are
/// noncontiguous for everyone, the union is perfectly contiguous.
struct Interleaved {
    procs: usize,
    blocks_per_proc: u64,
    block: u64,
    collective: bool,
}

impl Workload for Interleaved {
    fn name(&self) -> &'static str {
        "interleaved"
    }
    fn processes(&self) -> usize {
        self.procs
    }
    fn file_sizes(&self) -> Vec<u64> {
        vec![self.procs as u64 * self.blocks_per_proc * self.block]
    }
    fn stream(&self, pid: usize) -> OpStream {
        let regions: Vec<Extent> = (0..self.blocks_per_proc)
            .map(|b| {
                Extent::new(
                    (b * self.procs as u64 + pid as u64) * self.block,
                    self.block,
                )
            })
            .collect();
        let op = if self.collective {
            AppOp::CollectiveReadNoncontig { file: 0, regions }
        } else {
            AppOp::ReadNoncontig { file: 0, regions }
        };
        Box::new(std::iter::once(op))
    }
}

fn run(collective: bool) -> bps::core::trace::Trace {
    let w = Interleaved {
        procs: 4,
        blocks_per_proc: 256,
        block: 64 << 10,
        collective,
    };
    let cluster = Cluster::new(&ClusterConfig::hdd_cluster(4, 4, 1));
    let mut pfs = ParallelFs::new(4);
    let files: Vec<FileId> = w
        .file_sizes()
        .iter()
        .map(|&s| pfs.create(s, StripeLayout::default_over(4)))
        .collect();
    let stack = IoStack::new(cluster, FsBackend::Parallel(pfs));
    let (trace, _) = run_workload(stack, &w, &files, Dur::from_micros(5));
    trace
}

fn main() {
    println!("interleaved pattern: 4 processes x 256 blocks x 64 KiB (64 MiB union)\n");
    let indep = run(false);
    let coll = run(true);
    for (label, t) in [
        ("independent + sieving", &indep),
        ("two-phase collective ", &coll),
    ] {
        println!(
            "{label}: exec {:>7.3} s   FS moved {:>4} MiB   BPS {:>10.0}",
            t.execution_time().as_secs_f64(),
            t.bytes(Layer::FileSystem) >> 20,
            Bps.compute(t).unwrap()
        );
    }
    println!(
        "\nIndependent sieving makes every process drag its peers' blocks along\n\
         as holes (~4x the data); the collective reads the union once and ships\n\
         pieces over the network. BPS ranks the designs by what the application\n\
         experiences — exactly how the paper proposes comparing optimizations."
    );
}
