//! What-if replay: record real I/O with the tracer, then replay the same
//! access pattern against different simulated storage configurations and
//! rank them by BPS — the workflow the toolkit enables end to end.
//!
//! ```text
//! cargo run --release --example whatif_replay
//! ```

use bps::core::metrics::{Bps, Metric};
use bps::core::record::FileId;
use bps::experiments::runner::{run_case, CaseSpec, Storage};
use bps::trace::realfile::{trace_session, TracedFile};
use bps::workloads::replay::Replay;
use bps::workloads::spec::Workload;
use std::io::{Read, Seek, SeekFrom, Write};

fn main() -> std::io::Result<()> {
    // 1. Record: a small, mixed real workload on this machine.
    let dir = std::env::temp_dir().join("bps_whatif");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("app.dat");
    let ((), recorded) = trace_session(|clock, rec| {
        let mut f = TracedFile::create(&path, FileId(0), rec.clone(), clock.clone()).unwrap();
        let buf = vec![1u8; 64 << 10];
        for _ in 0..128 {
            f.write_all(&buf).unwrap();
        }
        f.flush().unwrap();
        let mut f = TracedFile::open(&path, FileId(0), rec.clone(), clock.clone()).unwrap();
        let mut small = vec![0u8; 4096];
        for i in 0..256u64 {
            f.seek(SeekFrom::Start((i * 31 * 4096) % (8 << 20)))
                .unwrap();
            f.read_exact(&mut small).unwrap();
        }
    });
    println!(
        "recorded {} real ops ({} bytes) in {:.3} s; real BPS = {:.0}",
        recorded.len(),
        recorded.bytes(bps::core::record::Layer::Application),
        recorded.execution_time().as_secs_f64(),
        Bps.compute(&recorded).unwrap()
    );

    // 2. Distill the access pattern.
    let replay = Replay::from_trace(&recorded);
    println!(
        "\nreplaying {} processes / {} file(s) through simulated configurations:\n",
        replay.processes(),
        replay.file_sizes().len()
    );

    // 3. What-if: the same pattern on each candidate storage.
    println!("{:<22} {:>10} {:>12}", "configuration", "exec(s)", "BPS");
    for (label, storage) in [
        ("local HDD (7200rpm)", Storage::Hdd),
        ("local PCIe SSD", Storage::Ssd),
        ("PVFS, 2 servers", Storage::Pvfs { servers: 2 }),
        ("PVFS, 8 servers", Storage::Pvfs { servers: 8 }),
    ] {
        let spec = CaseSpec::new(storage, &replay);
        let trace = run_case(&spec, 1);
        println!(
            "{label:<22} {:>10.3} {:>12.0}",
            trace.execution_time().as_secs_f64(),
            Bps.compute(&trace).unwrap()
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
