//! The paper's Set 2 in miniature: an IOzone record-size sweep on the
//! simulated HDD, showing IOPS and ARPT pointing the wrong way while
//! bandwidth and BPS track the application.
//!
//! ```text
//! cargo run --release --example iozone_sweep
//! ```

use bps::experiments::figures::common::CcFigure;
use bps::experiments::runner::{CasePoint, CaseSpec, Storage};
use bps::workloads::iozone::Iozone;

fn main() {
    let file_size = 128 << 20; // 128 MiB per case
    let seeds = [1, 2, 3];
    let points: Vec<CasePoint> = [4u64 << 10, 64 << 10, 512 << 10, 4 << 20]
        .iter()
        .map(|&record| {
            let w = Iozone::seq_read(file_size, record);
            let spec = CaseSpec::new(Storage::Hdd, &w);
            let label = if record >= 1 << 20 {
                format!("{}MB", record >> 20)
            } else {
                format!("{}KB", record >> 10)
            };
            CasePoint::averaged(label, &spec, &seeds)
        })
        .collect();

    let fig = CcFigure::from_points("IOzone record-size sweep (simulated HDD)", points);
    println!("{fig}");
    println!("Reading the table: growing the record size makes the run *faster*");
    println!("while IOPS collapses and ARPT rises — both anti-correlated with");
    println!("what the application experiences. BW and BPS track it correctly.");
}
